//! Runtime resolution of storage-format names to solver invocations.
//!
//! Accepted names (paper nomenclature):
//! `float64`, `float32`, `float16`, `bfloat16`, `frsz2_16`, `frsz2_21`,
//! `frsz2_32` (any `frsz2_<l>` with `2 <= l <= 64`), and every Table II
//! compressor configuration (`sz3_06`, `zfp_fr_32`, ...), which run as
//! LibPressio-style round-trip storage.

use frsz2::{Frsz2AdaptiveStore, Frsz2Config, Frsz2Store};
use krylov::{
    adaptive_gmres, gmres, gmres_with, AdaptiveOptions, BlockJacobi, GmresOptions, Identity,
    Jacobi, Preconditioner, SolveResult,
};
use lossy::RoundTripStore;
use numfmt::{DenseStore, BF16, F16};
use spla::Csr;

/// Runtime-selected preconditioner (`--precond`). The solver entry
/// points are generic over [`Preconditioner`], so the bench wraps the
/// three supported choices in one enum that delegates `apply`.
#[derive(Clone, Debug)]
pub enum Precond {
    None(Identity),
    Jacobi(Jacobi),
    BlockJacobi(BlockJacobi),
}

impl Precond {
    /// Build the named preconditioner from the operator. Accepted
    /// names: `none` (identity, the paper's §V-C setup), `jacobi`
    /// (point Jacobi), `block_jacobi` (dense 4×4 diagonal blocks).
    /// Degenerate rows/blocks degrade gracefully via the infallible
    /// constructors. Returns `None` for unknown names.
    pub fn parse(name: &str, a: &Csr) -> Option<Precond> {
        match name {
            "none" | "identity" => Some(Precond::None(Identity)),
            "jacobi" => Some(Precond::Jacobi(Jacobi::new(a))),
            "block_jacobi" => Some(Precond::BlockJacobi(BlockJacobi::new(a, 4))),
            _ => None,
        }
    }
}

impl Preconditioner for Precond {
    #[inline]
    fn apply(&self, v: &[f64], out: &mut [f64]) {
        match self {
            Precond::None(p) => p.apply(v, out),
            Precond::Jacobi(p) => p.apply(v, out),
            Precond::BlockJacobi(p) => p.apply(v, out),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Precond::None(p) => p.name(),
            Precond::Jacobi(p) => p.name(),
            Precond::BlockJacobi(p) => p.name(),
        }
    }
}

/// A resolved storage format.
#[derive(Clone, Debug)]
pub enum FormatSpec {
    F64,
    F32,
    F16,
    BF16,
    Frsz2 {
        block_size: u32,
        bits: u32,
    },
    /// Table II codec round-trip (by registry name).
    Lossy(String),
    /// Per-block adaptive bit length (`frsz2_ab`): one store, `l`
    /// chosen per 32-value block from the block's exponent spread.
    Frsz2Adaptive,
    /// Adaptive-precision basis: start at the bottom of
    /// `krylov::ESCALATION_LADDER` and escalate on stagnation.
    Adaptive,
    /// [`FormatSpec::Adaptive`] with ladder de-escalation enabled
    /// (single-cycle hysteresis): steps back down after a qualifying
    /// residual drop, reclaiming bandwidth.
    AdaptiveBidir,
}

impl FormatSpec {
    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            FormatSpec::F64 => "float64".into(),
            FormatSpec::F32 => "float32".into(),
            FormatSpec::F16 => "float16".into(),
            FormatSpec::BF16 => "bfloat16".into(),
            FormatSpec::Frsz2 { bits, .. } => format!("frsz2_{bits}"),
            FormatSpec::Lossy(n) => n.clone(),
            FormatSpec::Frsz2Adaptive => "frsz2_ab".into(),
            FormatSpec::Adaptive => "adaptive".into(),
            FormatSpec::AdaptiveBidir => "adaptive_bidir".into(),
        }
    }
}

/// Parse a format name. Returns `None` for unknown names.
pub fn parse(name: &str) -> Option<FormatSpec> {
    match name {
        "float64" | "f64" => return Some(FormatSpec::F64),
        "float32" | "f32" => return Some(FormatSpec::F32),
        "float16" | "f16" => return Some(FormatSpec::F16),
        "bfloat16" | "bf16" => return Some(FormatSpec::BF16),
        "adaptive" => return Some(FormatSpec::Adaptive),
        "adaptive_bidir" => return Some(FormatSpec::AdaptiveBidir),
        "frsz2_ab" => return Some(FormatSpec::Frsz2Adaptive),
        _ => {}
    }
    if let Some(bits) = name.strip_prefix("frsz2_") {
        if let Ok(bits) = bits.parse::<u32>() {
            if (2..=64).contains(&bits) {
                return Some(FormatSpec::Frsz2 {
                    block_size: 32,
                    bits,
                });
            }
        }
        return None;
    }
    if lossy::registry::by_name(name).is_some() {
        return Some(FormatSpec::Lossy(name.to_string()));
    }
    None
}

/// The four storage formats of the paper's Figs. 7/8/11.
pub fn standard_formats() -> Vec<FormatSpec> {
    vec![
        FormatSpec::F64,
        FormatSpec::F32,
        FormatSpec::F16,
        FormatSpec::Frsz2 {
            block_size: 32,
            bits: 32,
        },
    ]
}

/// Solve `A x = b` from `x0` with the Krylov basis held in `spec`
/// (unpreconditioned, as in §V-C).
pub fn solve(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    spec: &FormatSpec,
) -> SolveResult {
    solve_precond(a, b, x0, opts, spec, &Precond::None(Identity))
}

/// [`solve`] under an explicit right preconditioner (`--precond`):
/// compressed-basis formats against Jacobi/BlockJacobi at the same
/// basis traffic as the unpreconditioned runs.
pub fn solve_precond(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    opts: &GmresOptions,
    spec: &FormatSpec,
    precond: &Precond,
) -> SolveResult {
    match spec {
        FormatSpec::F64 => gmres::<DenseStore<f64>, _, _>(a, b, x0, opts, precond),
        FormatSpec::F32 => gmres::<DenseStore<f32>, _, _>(a, b, x0, opts, precond),
        FormatSpec::F16 => gmres::<DenseStore<F16>, _, _>(a, b, x0, opts, precond),
        FormatSpec::BF16 => gmres::<DenseStore<BF16>, _, _>(a, b, x0, opts, precond),
        FormatSpec::Frsz2 { block_size, bits } => {
            let cfg = Frsz2Config::new(*block_size, *bits);
            gmres_with(a, b, x0, opts, precond, |r, c| {
                Frsz2Store::with_config(cfg, r, c)
            })
        }
        FormatSpec::Lossy(name) => {
            let codec =
                lossy::registry::by_name(name).unwrap_or_else(|| panic!("unknown codec {name}"));
            gmres_with(a, b, x0, opts, precond, |r, c| {
                RoundTripStore::new(codec, r, c)
            })
        }
        FormatSpec::Frsz2Adaptive => gmres::<Frsz2AdaptiveStore, _, _>(a, b, x0, opts, precond),
        FormatSpec::Adaptive => {
            let aopts = AdaptiveOptions {
                gmres: opts.clone(),
                ..AdaptiveOptions::default()
            };
            adaptive_gmres(a, b, x0, &aopts, precond)
        }
        FormatSpec::AdaptiveBidir => {
            let aopts = AdaptiveOptions {
                gmres: opts.clone(),
                de_escalate: true,
                de_escalation_cycles: 1,
                ..AdaptiveOptions::default()
            };
            adaptive_gmres(a, b, x0, &aopts, precond)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_names() {
        assert!(matches!(parse("float64"), Some(FormatSpec::F64)));
        assert!(matches!(parse("float16"), Some(FormatSpec::F16)));
        assert!(matches!(
            parse("frsz2_32"),
            Some(FormatSpec::Frsz2 {
                block_size: 32,
                bits: 32
            })
        ));
        assert!(matches!(
            parse("frsz2_21"),
            Some(FormatSpec::Frsz2 { bits: 21, .. })
        ));
        assert!(matches!(parse("sz3_08"), Some(FormatSpec::Lossy(_))));
        assert!(matches!(parse("zfp_fr_16"), Some(FormatSpec::Lossy(_))));
        assert!(matches!(parse("adaptive"), Some(FormatSpec::Adaptive)));
        assert!(matches!(
            parse("adaptive_bidir"),
            Some(FormatSpec::AdaptiveBidir)
        ));
        assert!(matches!(parse("frsz2_ab"), Some(FormatSpec::Frsz2Adaptive)));
        assert!(parse("frsz2_99").is_none());
        assert!(parse("whatever").is_none());
    }

    #[test]
    fn precond_parse_and_delegation() {
        let a = spla::gen::conv_diff_3d(4, 4, 4, [0.1, 0.0, 0.0], 0.5);
        for (name, reported) in [
            ("none", "none"),
            ("jacobi", "jacobi"),
            ("block_jacobi", "block-jacobi"),
        ] {
            let p = Precond::parse(name, &a).unwrap();
            assert_eq!(p.name(), reported);
            let v = vec![1.0; a.rows()];
            let mut out = vec![0.0; a.rows()];
            p.apply(&v, &mut out);
            assert!(out.iter().all(|x| x.is_finite()));
        }
        assert!(Precond::parse("ilu", &a).is_none());
    }

    /// The preconditioned path must reach the target in fewer
    /// iterations than the identity path on a diagonally-dominant
    /// operator — and the compressed-basis formats must accept any
    /// `Precond` at the same storage rate as the identity run.
    #[test]
    fn preconditioned_solve_converges_faster() {
        let mut a = spla::gen::conv_diff_3d(6, 6, 6, [0.3, 0.1, 0.0], 0.3);
        // Skew the diagonal so Jacobi has something to equilibrate.
        let phi: Vec<i32> = (0..a.rows()).map(|i| (i % 7) as i32 - 3).collect();
        spla::gen::apply_similarity_scaling(&mut a, &phi);
        let (_, b) = spla::dense::manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-8,
            max_iters: 800,
            restart: 40,
            ..GmresOptions::default()
        };
        let spec = parse("frsz2_32").unwrap();
        let plain = solve(&a, &b, &x0, &opts, &spec);
        let jac = Precond::parse("jacobi", &a).unwrap();
        let pre = solve_precond(&a, &b, &x0, &opts, &spec, &jac);
        assert!(pre.stats.converged, "rrn {}", pre.stats.final_rrn);
        assert!(
            pre.stats.iterations <= plain.stats.iterations,
            "jacobi {} > identity {}",
            pre.stats.iterations,
            plain.stats.iterations
        );
        assert_eq!(
            pre.stats.basis_bits_per_value, plain.stats.basis_bits_per_value,
            "preconditioning must not change basis traffic"
        );
    }

    #[test]
    fn frsz2_ab_spec_solves_with_per_block_rate() {
        let a = spla::gen::wide_range_conv_diff_runs(8, 8, 8, 24, 16, 0x5202);
        let (_, b) = spla::dense::manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-10,
            max_iters: 1200,
            restart: 30,
            ..GmresOptions::default()
        };
        let r = solve(&a, &b, &x0, &opts, &parse("frsz2_ab").unwrap());
        assert!(r.stats.converged, "rrn {}", r.stats.final_rrn);
        assert_eq!(r.stats.format, "frsz2_ab");
        assert!(
            r.stats.basis_bits_per_value < 22.0,
            "rate {}",
            r.stats.basis_bits_per_value
        );
    }

    #[test]
    fn adaptive_spec_solves_and_reports_trajectory() {
        let a = spla::gen::conv_diff_3d(6, 6, 6, [0.3, 0.1, 0.0], 0.3);
        let (_, b) = spla::dense::manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-8,
            max_iters: 800,
            restart: 40,
            ..GmresOptions::default()
        };
        let r = solve(&a, &b, &x0, &opts, &FormatSpec::Adaptive);
        assert!(r.stats.converged, "rrn {}", r.stats.final_rrn);
        assert!(r.stats.final_rrn <= 1e-8);
        assert_eq!(r.stats.format_trajectory.len(), r.stats.restarts);
        assert_eq!(r.stats.format_trajectory[0], "frsz2_16");
    }

    #[test]
    fn solve_via_spec_matches_direct_call() {
        let a = spla::gen::conv_diff_3d(6, 6, 6, [0.3, 0.1, 0.0], 0.3);
        let (_, b) = spla::dense::manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-8,
            max_iters: 500,
            ..GmresOptions::default()
        };
        let via_spec = solve(&a, &b, &x0, &opts, &parse("frsz2_32").unwrap());
        let direct = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &opts, &Identity);
        assert_eq!(via_spec.stats.iterations, direct.stats.iterations);
        assert_eq!(via_spec.stats.format, "frsz2_32");
    }

    #[test]
    fn lossy_roundtrip_format_converges() {
        let a = spla::gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.4);
        let (_, b) = spla::dense::manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-6,
            max_iters: 500,
            ..GmresOptions::default()
        };
        let r = solve(&a, &b, &x0, &opts, &parse("zfp_fr_32").unwrap());
        assert!(
            r.stats.converged,
            "zfp_fr_32 should converge, rrn {}",
            r.stats.final_rrn
        );
    }
}
