//! Minimal JSON value type, emitter, parser, and the `BENCH_*.json`
//! schema validator.
//!
//! The workspace is fully offline (no serde), so the perf harness
//! carries its own JSON support. Objects preserve insertion order and
//! the emitter is deterministic, so the emitted files are
//! **schema-stable**: the same harness configuration always produces
//! the same key sequence, making the files diffable across PRs — they
//! are the perf trajectory CI artifacts are judged against.
//!
//! The full schema — every root and per-case key, the case inventory
//! of all seven suites (`spmv`, `codec`, `solve`, `service`, `block`,
//! `sstep`, `faults`), and the v1→v8 changelog — lives in
//! **`docs/bench-schema.md`** at the repository root. That document is
//! the single source of truth; validator error messages cite it. The
//! short version:
//!
//! ```json
//! {
//!   "schema_version": 8,
//!   "bench": "spmv",                  // suite name
//!   "quick": false,                   // quick (CI smoke) sizes?
//!   "threads_available": 8,           // host parallelism at run time
//!   "config": { "...": "..." },       // suite-specific scalars
//!   "cases": [                        // one entry per (case, threads)
//!     {
//!       "name": "spmv_csr",
//!       "threads": 4,
//!       "runs": 5,
//!       "min_ms": 1.9, "median_ms": 2.0, "mean_ms": 2.1,
//!       "metrics": { "gbps": 6.3 },   // case-specific numbers
//!       "fingerprint": "5d1fe0c2…",   // determinism hash (optional)
//!       "format_trajectory": ["frsz2_16", "float64"]  // optional (v2)
//!     }
//!   ],
//!   "speedup": {                      // optional; present when the
//!     "case": "spmv_csr",             // harness ran ≥ 2 thread counts
//!     "threads": 4, "vs": 1, "factor": 2.7
//!   }
//! }
//! ```
//!
//! `cases[*].fingerprint` hashes the bit pattern of the case's numeric
//! output; the harness fails if it differs across thread counts, so CI
//! enforces the determinism contract, not just the schema.

use std::fmt;

/// An ordered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (duplicate keys are not merged).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs (ergonomic literal form).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no NaN/Inf; null keeps the file parseable
                    // and the validator rejects it where a number is
                    // required.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                f.write_str("[\n")?;
                for (i, item) in items.iter().enumerate() {
                    f.write_str(&pad_in)?;
                    item.write_indented(f, indent + 1)?;
                    f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
                }
                write!(f, "{pad}]")
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{\n")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    f.write_str(&pad_in)?;
                    write_escaped(f, k)?;
                    f.write_str(": ")?;
                    v.write_indented(f, indent + 1)?;
                    f.write_str(if i + 1 < pairs.len() { ",\n" } else { "\n" })?;
                }
                write!(f, "{pad}}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

/// Parse a JSON document (strict enough for round-tripping the files
/// this workspace emits; `\uXXXX` escapes outside the BMP are not
/// combined into surrogate pairs).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Current `BENCH_*.json` schema version (documented field-by-field in
/// `docs/bench-schema.md`).
pub const BENCH_SCHEMA_VERSION: f64 = 8.0;

fn require_num(v: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a finite number"))
}

/// Validate a parsed document against the current bench schema
/// (documented field-by-field in `docs/bench-schema.md`). Returns the
/// number of cases.
pub fn validate_bench(doc: &Json) -> Result<usize, String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("document root must be an object".into());
    }
    let version = require_num(doc, "root", "schema_version")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version} (this harness validates \
             version {BENCH_SCHEMA_VERSION}; see docs/bench-schema.md)"
        ));
    }
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("root: missing \"bench\" string")?;
    if bench.is_empty() {
        return Err("root: \"bench\" must be non-empty".into());
    }
    if !matches!(doc.get("quick"), Some(Json::Bool(_))) {
        return Err("root: missing \"quick\" bool".into());
    }
    if require_num(doc, "root", "threads_available")? < 1.0 {
        return Err("root: \"threads_available\" must be >= 1".into());
    }
    if !matches!(doc.get("config"), Some(Json::Obj(_))) {
        return Err("root: missing \"config\" object".into());
    }
    let cases = doc
        .get("cases")
        .and_then(Json::as_arr)
        .ok_or("root: missing \"cases\" array")?;
    if cases.is_empty() {
        return Err("\"cases\" must be non-empty".into());
    }
    for (i, case) in cases.iter().enumerate() {
        let ctx = format!("cases[{i}]");
        case.get("name")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| format!("{ctx}: missing \"name\" string"))?;
        if require_num(case, &ctx, "threads")? < 1.0 {
            return Err(format!("{ctx}: \"threads\" must be >= 1"));
        }
        if require_num(case, &ctx, "runs")? < 1.0 {
            return Err(format!("{ctx}: \"runs\" must be >= 1"));
        }
        for key in ["min_ms", "median_ms", "mean_ms"] {
            if require_num(case, &ctx, key)? < 0.0 {
                return Err(format!("{ctx}: \"{key}\" must be >= 0"));
            }
        }
        if let Some(metrics) = case.get("metrics") {
            let Json::Obj(pairs) = metrics else {
                return Err(format!("{ctx}: \"metrics\" must be an object"));
            };
            for (k, v) in pairs {
                if v.as_f64().is_none() {
                    return Err(format!("{ctx}: metric \"{k}\" must be a number"));
                }
            }
        }
        if let Some(fp) = case.get("fingerprint") {
            if fp.as_str().is_none() {
                return Err(format!("{ctx}: \"fingerprint\" must be a string"));
            }
        }
        if let Some(traj) = case.get("format_trajectory") {
            let entries = traj
                .as_arr()
                .ok_or_else(|| format!("{ctx}: \"format_trajectory\" must be an array"))?;
            for (k, e) in entries.iter().enumerate() {
                if e.as_str().is_none_or(str::is_empty) {
                    return Err(format!(
                        "{ctx}: format_trajectory[{k}] must be a non-empty string"
                    ));
                }
            }
        }
    }
    if let Some(speedup) = doc.get("speedup") {
        speedup
            .get("case")
            .and_then(Json::as_str)
            .ok_or("speedup: missing \"case\" string")?;
        for key in ["threads", "vs", "factor"] {
            require_num(speedup, "speedup", key)?;
        }
    }
    Ok(cases.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(8.0)),
            ("bench", Json::Str("spmv".into())),
            ("quick", Json::Bool(true)),
            ("threads_available", Json::Num(4.0)),
            (
                "config",
                Json::obj(vec![
                    ("nnz", Json::Num(1_234_567.0)),
                    ("matrix", Json::Str("conv_diff 56^3".into())),
                ]),
            ),
            (
                "cases",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::Str("spmv_csr".into())),
                    ("threads", Json::Num(2.0)),
                    ("runs", Json::Num(3.0)),
                    ("min_ms", Json::Num(1.25)),
                    ("median_ms", Json::Num(1.5)),
                    ("mean_ms", Json::Num(1.625)),
                    ("metrics", Json::obj(vec![("gbps", Json::Num(6.25))])),
                    ("fingerprint", Json::Str("00ff".into())),
                ])]),
            ),
            (
                "speedup",
                Json::obj(vec![
                    ("case", Json::Str("spmv_csr".into())),
                    ("threads", Json::Num(2.0)),
                    ("vs", Json::Num(1.0)),
                    ("factor", Json::Num(1.8)),
                ]),
            ),
        ])
    }

    #[test]
    fn emit_parse_roundtrip_preserves_structure() {
        let doc = sample_doc();
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        // Emission is deterministic (schema-stable output).
        assert_eq!(text, back.to_string());
    }

    #[test]
    fn validator_accepts_sample() {
        assert_eq!(validate_bench(&sample_doc()), Ok(1));
    }

    #[test]
    fn validator_checks_format_trajectory_shape() {
        let add_traj = |traj: Json| {
            let mut doc = sample_doc();
            if let Json::Obj(pairs) = &mut doc {
                for (k, v) in pairs.iter_mut() {
                    if k == "cases" {
                        if let Json::Arr(cases) = v {
                            if let Json::Obj(case) = &mut cases[0] {
                                case.push(("format_trajectory".into(), traj));
                            }
                        }
                        break;
                    }
                }
            }
            doc
        };
        let good = add_traj(Json::Arr(vec![
            Json::Str("frsz2_16".into()),
            Json::Str("float64".into()),
        ]));
        assert_eq!(validate_bench(&good), Ok(1));
        // An empty trajectory is valid (a solve may converge with no cycle).
        assert_eq!(validate_bench(&add_traj(Json::Arr(vec![]))), Ok(1));
        assert!(validate_bench(&add_traj(Json::Str("frsz2_16".into()))).is_err());
        assert!(validate_bench(&add_traj(Json::Arr(vec![Json::Num(1.0)]))).is_err());
        assert!(validate_bench(&add_traj(Json::Arr(vec![Json::Str(String::new())]))).is_err());
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let mut missing_cases = sample_doc();
        if let Json::Obj(pairs) = &mut missing_cases {
            pairs.retain(|(k, _)| k != "cases");
        }
        assert!(validate_bench(&missing_cases).is_err());

        let wrong_version = parse(
            &sample_doc()
                .to_string()
                .replace("\"schema_version\": 8", "\"schema_version\": 3"),
        )
        .unwrap();
        let err = validate_bench(&wrong_version).unwrap_err();
        // Rejections point the reader at the schema document.
        assert!(err.contains("docs/bench-schema.md"), "{err}");

        let negative_time = parse(
            &sample_doc()
                .to_string()
                .replace("\"min_ms\": 1.25", "\"min_ms\": -1"),
        )
        .unwrap();
        assert!(validate_bench(&negative_time).is_err());

        assert!(validate_bench(&Json::Arr(vec![])).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = parse(r#"{"a\n\"b": [1, -2.5e3, null, true]}"#).unwrap();
        assert_eq!(
            v.get("a\n\"b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(4)
        );
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        let v = Json::Arr(vec![Json::Num(f64::NAN), Json::Num(f64::INFINITY)]);
        assert_eq!(v.to_string(), "[\n  null,\n  null\n]");
    }
}
