//! H100 end-to-end time projection for a CB-GMRES solve.
//!
//! The CPU wall clock of this host (2 cores, ~10 compute ops per loaded
//! value) cannot exhibit the paper's performance shape — FRSZ2's whole
//! premise is the H100's ~100:1 compute-to-load ratio (§I). This model
//! projects each solve onto the H100 instead: the solver's measured
//! traffic counters (basis bytes compressed/decompressed, SpMV sweeps,
//! auxiliary vector work) run through the same roofline as the gpusim
//! kernels, with the decompression instruction cost per value *measured*
//! from the simulated kernel of `gpusim::kernels`.

use crate::formats::FormatSpec;
use gpusim::kernels::{stream_base_counters, StreamFormat};
use gpusim::H100_PCIE;
use krylov::SolveStats;
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

/// Per-value decompression cost of a storage format, measured once from
/// the simulated streaming kernel.
#[derive(Clone, Copy, Debug)]
struct FormatCost {
    /// Integer + clz operations per value decompressed.
    ops_per_value: f64,
    /// Stored bits per value (incl. block metadata).
    bits_per_value: f64,
}

fn measure(fmt: StreamFormat) -> FormatCost {
    let n = 32 * 256;
    let (c, _) = stream_base_counters(fmt, n);
    FormatCost {
        ops_per_value: (c.int + c.clz) as f64 / n as f64,
        bits_per_value: c.bytes_read as f64 * 8.0 / n as f64,
    }
}

fn cost_for(spec: &FormatSpec) -> FormatCost {
    static CACHE: OnceLock<Mutex<HashMap<String, FormatCost>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = spec.name();
    if let Some(c) = cache.lock().unwrap().get(&key) {
        return *c;
    }
    let fmt = match spec {
        FormatSpec::F64 => StreamFormat::AccF64,
        FormatSpec::F32 => StreamFormat::AccF32,
        FormatSpec::F16 | FormatSpec::BF16 => StreamFormat::AccF16,
        FormatSpec::Frsz2 { bits, .. } => StreamFormat::Frsz2(*bits),
        // Round-trip codecs are quality-only in the paper (§V-D); model
        // their traffic as f64 (they are never timed in Fig. 11).
        FormatSpec::Lossy(_) => StreamFormat::AccF64,
        // An adaptive solve mixes ladder formats across cycles (and the
        // per-block store mixes them across blocks); the byte counters
        // already carry the real traffic, so only the per-value decode
        // cost needs a representative — frsz2_32, the rung/length where
        // these solves spend most decompression work.
        FormatSpec::Adaptive | FormatSpec::AdaptiveBidir | FormatSpec::Frsz2Adaptive => {
            StreamFormat::Frsz2(32)
        }
    };
    let c = measure(fmt);
    cache.lock().unwrap().insert(key, c);
    c
}

/// Projected H100 execution time in seconds for one solve.
///
/// `n` is the problem dimension, `spmv_bytes` the per-SpMV traffic of
/// the operator (values + indices + vectors).
pub fn h100_time(spec: &FormatSpec, stats: &SolveStats, n: usize, spmv_bytes: usize) -> f64 {
    let c = cost_for(spec);
    // Memory traffic: compressed basis + SpMV sweeps + the ~6 auxiliary
    // f64 n-vector passes per iteration (w/z/v reads and writes, dots).
    let basis_bytes = (stats.basis_bytes_read + stats.basis_bytes_written) as f64;
    let spmv = stats.spmv_count as f64 * spmv_bytes as f64;
    let aux = stats.iterations as f64 * 6.0 * n as f64 * 8.0;
    let mem_time = (basis_bytes + spmv + aux) / H100_PCIE.mem_bw;
    // Decompression instruction pressure on the integer pipe.
    let values_read = stats.basis_bytes_read as f64 / (c.bits_per_value / 8.0);
    let int_time = c.ops_per_value * values_read / H100_PCIE.int_ops;
    mem_time.max(int_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats(iterations: usize, basis_read: u64, basis_written: u64) -> SolveStats {
        SolveStats {
            iterations,
            basis_bytes_read: basis_read,
            basis_bytes_written: basis_written,
            spmv_count: iterations as u64,
            ..SolveStats::default()
        }
    }

    #[test]
    fn narrower_storage_is_faster_at_equal_iterations() {
        let n = 100_000usize;
        let spmv_bytes = 10 * n;
        // Same iteration count, traffic proportional to storage width.
        let iters = 300;
        let cols = 50u64; // average columns streamed per iteration
        let t = |spec: &FormatSpec, bits: u64| {
            let per_col = n as u64 * bits / 8;
            let stats = fake_stats(iters, iters as u64 * cols * per_col, iters as u64 * per_col);
            h100_time(spec, &stats, n, spmv_bytes)
        };
        let f64t = t(&FormatSpec::F64, 64);
        let f32t = t(&FormatSpec::F32, 32);
        let z32t = t(
            &FormatSpec::Frsz2 {
                block_size: 32,
                bits: 32,
            },
            33,
        );
        assert!(f32t < f64t, "float32 must beat float64");
        assert!(z32t < f64t, "frsz2_32 must beat float64");
        // frsz2_32 within a few percent of float32 (33 vs 32 bits).
        assert!(
            (z32t - f32t).abs() / f32t < 0.1,
            "frsz2_32 ~ float32: {z32t} vs {f32t}"
        );
    }

    #[test]
    fn iteration_overhead_can_flip_the_ordering() {
        // The Fig. 11 PR02R mechanism: frsz2_32 at 3.5x iterations loses
        // to float64 despite narrower storage.
        let n = 50_000usize;
        let spmv_bytes = 10 * n;
        let cols = 50u64;
        let mk = |iters: usize, bits: u64| {
            let per_col = n as u64 * bits / 8;
            fake_stats(iters, iters as u64 * cols * per_col, iters as u64 * per_col)
        };
        let f64t = h100_time(&FormatSpec::F64, &mk(400, 64), n, spmv_bytes);
        let z32t = h100_time(
            &FormatSpec::Frsz2 {
                block_size: 32,
                bits: 32,
            },
            &mk(1400, 33),
            n,
            spmv_bytes,
        );
        assert!(z32t > f64t, "3.5x iterations must overwhelm 2x compression");
    }
}
