//! Console tables and CSV emission for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// Print an aligned table: `header` then `rows`.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Write rows as CSV under `results/` (created on demand). Returns the
/// path written.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<String> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path.display().to_string())
}

/// Write a machine-readable benchmark document as `BENCH_<name>.json`
/// in the current directory (the workspace root under `cargo run`).
/// These files are the perf trajectory: schema-stable (see
/// [`crate::json`]), diffed across PRs, and validated by CI's
/// `bench-smoke` job. Returns the path written.
pub fn write_bench_json(name: &str, doc: &crate::json::Json) -> std::io::Result<String> {
    let path = format!("BENCH_{name}.json");
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{doc}")?;
    Ok(path)
}

/// Format a float compactly for tables.
pub fn fmt_g(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 && v.abs() < 10_000.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Mean and sample standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn fmt_g_ranges() {
        assert_eq!(fmt_g(0.0), "0");
        assert_eq!(fmt_g(1.5), "1.500");
        assert_eq!(fmt_g(4e-16), "4.00e-16");
    }
}
