//! Property tests for the sparse substrate.

use proptest::prelude::*;
use spla::{dense, io, Coo, Ell, SellCSigma, SparseMatrix};
use std::io::BufReader;

/// Random small dense matrix as triplets (possibly with duplicates).
fn triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..(n * n * 2).max(1))
}

fn dense_from(n: usize, trips: &[(usize, usize, f64)]) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; n]; n];
    for &(r, c, v) in trips {
        d[r][c] += v;
    }
    d
}

proptest! {
    /// CSR SpMV equals the dense mat-vec built from the same triplets.
    #[test]
    fn spmv_matches_dense(
        trips in triplets(12),
        x in prop::collection::vec(-5.0f64..5.0, 12),
    ) {
        let n = 12;
        let mut coo = Coo::new(n, n);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let d = dense_from(n, &trips);
        let y = a.mul_vec(&x);
        for i in 0..n {
            let expect: f64 = (0..n).map(|j| d[i][j] * x[j]).sum();
            prop_assert!((y[i] - expect).abs() <= 1e-9 * expect.abs().max(1.0));
        }
    }

    /// Transposing twice is the identity, and (Aᵀ)ᵀ x == A x.
    #[test]
    fn transpose_involution(trips in triplets(10), x in prop::collection::vec(-2.0f64..2.0, 10)) {
        let mut coo = Coo::new(10, 10);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let tt = a.transpose().transpose();
        prop_assert_eq!(a.mul_vec(&x), tt.mul_vec(&x));
    }

    /// xᵀ(Ay) == (Aᵀx)ᵀy for every matrix: the adjoint identity.
    #[test]
    fn adjoint_identity(
        trips in triplets(9),
        x in prop::collection::vec(-2.0f64..2.0, 9),
        y in prop::collection::vec(-2.0f64..2.0, 9),
    ) {
        let mut coo = Coo::new(9, 9);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let lhs = dense::dot(&x, &a.mul_vec(&y));
        let rhs = dense::dot(&a.transpose().mul_vec(&x), &y);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0));
    }

    /// MatrixMarket write -> read is the identity on CSR matrices.
    #[test]
    fn matrix_market_roundtrip(trips in triplets(8)) {
        let mut coo = Coo::new(8, 8);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).unwrap();
        let b = io::read_matrix_market(BufReader::new(&buf[..])).unwrap().to_csr();
        prop_assert_eq!(a.rows(), b.rows());
        prop_assert_eq!(a.col_indices(), b.col_indices());
        prop_assert_eq!(a.values(), b.values());
    }

    /// MatrixMarket symmetric/real: writing the lower triangle and
    /// re-expanding on read is the identity on symmetric matrices.
    #[test]
    fn matrix_market_symmetric_real_roundtrip(trips in triplets(8)) {
        // Accumulate densely so each coordinate is summed in one fixed
        // order: duplicate triplets would otherwise be summed in
        // sort-dependent order, breaking exact (bitwise) symmetry.
        let mut d = [[0.0f64; 8]; 8];
        for &(r, c, v) in &trips {
            d[r][c] += v;
            d[c][r] += v;
        }
        let mut coo = Coo::new(8, 8);
        for (r, row) in d.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    coo.push(r, c, v);
                }
            }
        }
        let a = coo.to_csr();
        prop_assert_eq!(a.asymmetry(), 0.0);
        let mut buf = Vec::new();
        io::write_matrix_market_with(&a, io::MmField::Real, io::MmSymmetry::Symmetric, &mut buf)
            .unwrap();
        let header = String::from_utf8(buf.clone()).unwrap();
        prop_assert!(header.starts_with("%%MatrixMarket matrix coordinate real symmetric"));
        let b = io::read_matrix_market(BufReader::new(&buf[..])).unwrap().to_csr();
        prop_assert_eq!(a.row_ptr(), b.row_ptr());
        prop_assert_eq!(a.col_indices(), b.col_indices());
        prop_assert_eq!(a.values(), b.values());
    }

    /// MatrixMarket integer/general round trip is exact.
    #[test]
    fn matrix_market_integer_general_roundtrip(
        trips in prop::collection::vec((0..8usize, 0..8usize, -50i64..50), 0..60),
    ) {
        let mut coo = Coo::new(8, 8);
        for &(r, c, v) in &trips {
            coo.push(r, c, v as f64);
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        io::write_matrix_market_with(&a, io::MmField::Integer, io::MmSymmetry::General, &mut buf)
            .unwrap();
        let header = String::from_utf8(buf.clone()).unwrap();
        prop_assert!(header.starts_with("%%MatrixMarket matrix coordinate integer general"));
        let b = io::read_matrix_market(BufReader::new(&buf[..])).unwrap().to_csr();
        prop_assert_eq!(a.row_ptr(), b.row_ptr());
        prop_assert_eq!(a.col_indices(), b.col_indices());
        prop_assert_eq!(a.values(), b.values());
    }

    /// MatrixMarket symmetric/integer round trip is exact.
    #[test]
    fn matrix_market_symmetric_integer_roundtrip(
        lower in prop::collection::vec((0..8usize, 0..8usize, -50i64..50), 0..40),
    ) {
        let mut coo = Coo::new(8, 8);
        for &(r, c, v) in &lower {
            let (r, c) = if r >= c { (r, c) } else { (c, r) };
            coo.push(r, c, v as f64);
            if r != c {
                coo.push(c, r, v as f64);
            }
        }
        let a = coo.to_csr();
        let mut buf = Vec::new();
        io::write_matrix_market_with(
            &a,
            io::MmField::Integer,
            io::MmSymmetry::Symmetric,
            &mut buf,
        )
        .unwrap();
        let b = io::read_matrix_market(BufReader::new(&buf[..])).unwrap().to_csr();
        prop_assert_eq!(a.row_ptr(), b.row_ptr());
        prop_assert_eq!(a.col_indices(), b.col_indices());
        prop_assert_eq!(a.values(), b.values());
    }

    /// ELL and SELL-C-σ SpMV are bit-identical to CSR on arbitrary
    /// generated matrices, for several slice/window geometries.
    #[test]
    fn formats_spmv_bit_identical_to_csr(
        trips in triplets(20),
        x in prop::collection::vec(-5.0f64..5.0, 20),
        c in 1usize..9,
        sigma in 1usize..40,
    ) {
        let n = 20;
        let mut coo = Coo::new(n, n);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let reference = a.mul_vec(&x);
        let formats: [Box<dyn SparseMatrix>; 2] = [
            Box::new(Ell::from_csr(&a)),
            Box::new(SellCSigma::from_csr(&a, c, sigma)),
        ];
        for m in &formats {
            prop_assert_eq!(m.nnz(), a.nnz());
            let mut y = vec![0.0; n];
            m.spmv(&x, &mut y);
            for i in 0..n {
                prop_assert_eq!(
                    y[i].to_bits(),
                    reference[i].to_bits(),
                    "{} row {}", m.format_name(), i
                );
            }
        }
    }

    /// `spmm_into` (default tiled AND the fused CSR/ELL/SELL overrides)
    /// reproduces per-RHS `spmv` bit for bit on arbitrary generated
    /// matrices at several block widths.
    #[test]
    fn formats_spmm_bit_identical_to_per_rhs_spmv(
        trips in triplets(20),
        xs in prop::collection::vec(-5.0f64..5.0, 20 * 16),
        c in 1usize..9,
        sigma in 1usize..40,
    ) {
        let n = 20;
        let mut coo = Coo::new(n, n);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let formats: [Box<dyn SparseMatrix>; 3] = [
            Box::new(a.clone()),
            Box::new(Ell::from_csr(&a)),
            Box::new(SellCSigma::from_csr(&a, c, sigma)),
        ];
        for width in [1usize, 2, 7, 16] {
            // Interleave the first `width` of the 16 generated RHS.
            let mut x = vec![0.0; n * width];
            for i in 0..n {
                for j in 0..width {
                    x[i * width + j] = xs[j * n + i];
                }
            }
            for m in &formats {
                let mut y = vec![0.0; n * width];
                m.spmm_into(&x, &mut y, width);
                for j in 0..width {
                    let xj: Vec<f64> = (0..n).map(|i| x[i * width + j]).collect();
                    let reference = a.mul_vec(&xj);
                    for i in 0..n {
                        prop_assert_eq!(
                            y[i * width + j].to_bits(),
                            reference[i].to_bits(),
                            "{} width {} rhs {} row {}", m.format_name(), width, j, i
                        );
                    }
                }
            }
        }
    }

    /// `spmv_powers_into` (default tiled AND the CSR/ELL/SELL
    /// overrides) reproduces `s` successive `spmv` calls bit for bit on
    /// arbitrary generated square matrices at several panel depths.
    #[test]
    fn formats_spmv_powers_bit_identical_to_repeated_spmv(
        trips in triplets(20),
        x in prop::collection::vec(-2.0f64..2.0, 20),
        c in 1usize..9,
        sigma in 1usize..40,
    ) {
        let n = 20;
        let mut coo = Coo::new(n, n);
        for &(r, c, v) in &trips {
            coo.push(r, c, v);
        }
        let a = coo.to_csr();
        let formats: [Box<dyn SparseMatrix>; 3] = [
            Box::new(a.clone()),
            Box::new(Ell::from_csr(&a)),
            Box::new(SellCSigma::from_csr(&a, c, sigma)),
        ];
        for s in [1usize, 2, 5, 8] {
            // Reference: s chained spmv calls.
            let mut reference = vec![0.0; n * s];
            let mut src = x.clone();
            for p in 0..s {
                let mut y = vec![0.0; n];
                a.spmv(&src, &mut y);
                reference[p * n..(p + 1) * n].copy_from_slice(&y);
                src = y;
            }
            for m in &formats {
                let mut ys = vec![0.0; n * s];
                m.spmv_powers_into(&x, &mut ys, s);
                for (i, (got, want)) in ys.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{} s {} slot {}", m.format_name(), s, i
                    );
                }
            }
        }
    }

    /// dot/axpy/norm2 satisfy basic algebraic identities.
    #[test]
    fn vector_kernel_identities(
        x in prop::collection::vec(-3.0f64..3.0, 1..400),
        alpha in -2.0f64..2.0,
    ) {
        let n = x.len();
        // norm2^2 == dot(x, x)
        let nrm = dense::norm2(&x);
        prop_assert!((nrm * nrm - dense::dot(&x, &x)).abs() <= 1e-9 * (nrm * nrm).max(1.0));
        // axpy(alpha, x, 0) == alpha * x
        let mut y = vec![0.0; n];
        dense::axpy(alpha, &x, &mut y);
        for i in 0..n {
            prop_assert_eq!(y[i], alpha * x[i]);
        }
        // sub(x, x) == 0
        let mut z = vec![1.0; n];
        dense::sub(&x, &x, &mut z);
        prop_assert!(z.iter().all(|&v| v == 0.0));
    }
}

/// Forwards everything to CSR *except* `spmm_into` and
/// `spmv_powers_into`, so the traits' default tiled implementations
/// (over `for_each_in_row`) are exercised by the cross-thread-count
/// tests below.
struct DefaultSpmm(spla::Csr);

impl SparseMatrix for DefaultSpmm {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    fn nnz(&self) -> usize {
        self.0.nnz()
    }
    fn format_name(&self) -> &'static str {
        "csr-default-spmm"
    }
    fn storage_bytes(&self) -> usize {
        SparseMatrix::storage_bytes(&self.0)
    }
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(u32, f64)) {
        self.0.for_each_in_row(i, f)
    }
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.0.spmv(x, y)
    }
}

/// `spmm_into` agrees with serial per-RHS CSR SpMV *bitwise* on a
/// matrix spanning many parallel row chunks, for every format (plus the
/// trait-default tiling), under pools of 1, 2 and 8 threads, at block
/// widths 1, 2, 7 and 16 — the block arm of the determinism contract.
#[test]
fn formats_spmm_bit_identical_across_thread_counts() {
    let n = 6000;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0 + ((i % 11) as f64) * 0.125);
        for k in 0..(i % 6) {
            let c = (i + 13 * (k + 1)) % n;
            if c != i {
                coo.push(i, c, -0.3 - (k as f64) * 0.05);
            }
        }
    }
    let a = coo.to_csr();
    let formats: [Box<dyn SparseMatrix>; 4] = [
        Box::new(a.clone()),
        Box::new(Ell::from_csr(&a)),
        Box::new(SellCSigma::from_csr(&a, 32, 256)),
        Box::new(DefaultSpmm(a.clone())),
    ];
    for width in [1usize, 2, 7, 16] {
        let mut x = vec![0.0; n * width];
        for i in 0..n {
            for (j, xv) in x[i * width..(i + 1) * width].iter_mut().enumerate() {
                *xv = ((i as f64) * 0.29 + (j as f64) * 1.7).sin();
            }
        }
        // Per-RHS serial CSR reference.
        let mut reference = vec![0.0; n * width];
        for j in 0..width {
            let xj: Vec<f64> = (0..n).map(|i| x[i * width + j]).collect();
            let mut yj = vec![0.0; n];
            a.spmv_serial(&xj, &mut yj);
            for i in 0..n {
                reference[i * width + j] = yj[i];
            }
        }
        for m in &formats {
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut y = vec![0.0; n * width];
                pool.install(|| m.spmm_into(&x, &mut y, width));
                for (i, (got, want)) in y.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{} width {width} slot {i} at {threads} threads",
                        m.format_name()
                    );
                }
            }
        }
    }
}

/// The matrix-powers panel agrees with chained serial CSR SpMV
/// *bitwise* on a matrix spanning many parallel row chunks, for every
/// format (plus the trait-default tiling), under pools of 1, 2 and 8
/// threads, at panel depths 1, 2, 4 and 8 — the s-step arm of the
/// determinism contract.
#[test]
fn formats_spmv_powers_bit_identical_across_thread_counts() {
    let n = 6000;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0 + ((i % 11) as f64) * 0.125);
        for k in 0..(i % 6) {
            let c = (i + 13 * (k + 1)) % n;
            if c != i {
                coo.push(i, c, -0.3 - (k as f64) * 0.05);
            }
        }
    }
    let a = coo.to_csr();
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.29).sin()).collect();
    let formats: [Box<dyn SparseMatrix>; 4] = [
        Box::new(a.clone()),
        Box::new(Ell::from_csr(&a)),
        Box::new(SellCSigma::from_csr(&a, 32, 256)),
        Box::new(DefaultSpmm(a.clone())),
    ];
    for s in [1usize, 2, 4, 8] {
        // Chained serial CSR reference.
        let mut reference = vec![0.0; n * s];
        let mut src = x.clone();
        for p in 0..s {
            let mut y = vec![0.0; n];
            a.spmv_serial(&src, &mut y);
            reference[p * n..(p + 1) * n].copy_from_slice(&y);
            src = y;
        }
        for m in &formats {
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut ys = vec![0.0; n * s];
                pool.install(|| m.spmv_powers_into(&x, &mut ys, s));
                for (i, (got, want)) in ys.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "{} s {s} slot {i} at {threads} threads",
                        m.format_name()
                    );
                }
            }
        }
    }
}

/// Every format agrees with serial CSR *bitwise* on a matrix large
/// enough to span many parallel row chunks, under pools of 1, 2 and 8
/// threads — the cross-format arm of the determinism contract.
#[test]
fn formats_spmv_bit_identical_across_thread_counts() {
    let n = 6000;
    let mut coo = Coo::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0 + ((i % 11) as f64) * 0.125);
        // Irregular row lengths: 0..=5 extra couplings per row.
        for k in 0..(i % 6) {
            let c = (i + 13 * (k + 1)) % n;
            if c != i {
                coo.push(i, c, -0.3 - (k as f64) * 0.05);
            }
        }
    }
    let a = coo.to_csr();
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.29).sin()).collect();
    let mut reference = vec![0.0; n];
    a.spmv_serial(&x, &mut reference);
    let formats: [Box<dyn SparseMatrix>; 4] = [
        Box::new(a.clone()),
        Box::new(Ell::from_csr(&a)),
        Box::new(SellCSigma::from_csr(&a, 32, 256)),
        spla::auto_format(&a).build(&a),
    ];
    for m in &formats {
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut y = vec![0.0; n];
            pool.install(|| m.spmv(&x, &mut y));
            for i in 0..n {
                assert_eq!(
                    y[i].to_bits(),
                    reference[i].to_bits(),
                    "{} row {i} at {threads} threads",
                    m.format_name()
                );
            }
        }
    }
}
