//! The Table I test suite: synthetic analogues of the eleven SuiteSparse
//! CFD matrices with the published metadata.
//!
//! Each entry records the *paper's* size/nnz/target-RRN and builds a
//! scaled synthetic matrix reproducing the property that drives that
//! matrix's behaviour in the evaluation (see `gen` module docs and
//! DESIGN.md §1). `scale = 1.0` produces the default laptop-scale
//! problem; the paper-scale dimensions are recorded for reference.
//!
//! Real `.mtx` files can be substituted at any time via
//! [`crate::io::read_matrix_market`].

use crate::gen;
use crate::Csr;

/// One row of the paper's Table I.
#[derive(Clone, Copy, Debug)]
pub struct TableOneEntry {
    pub name: &'static str,
    /// Rows in the SuiteSparse original.
    pub paper_rows: usize,
    /// Non-zeros in the SuiteSparse original.
    pub paper_nnz: usize,
    /// Target relative residual norm (stopping criterion, §V-C).
    pub target_rrn: f64,
}

/// Table I of the paper, verbatim.
pub const TABLE_ONE: [TableOneEntry; 11] = [
    TableOneEntry {
        name: "atmosmodd",
        paper_rows: 1_270_432,
        paper_nnz: 8_814_880,
        target_rrn: 4.0e-16,
    },
    TableOneEntry {
        name: "atmosmodj",
        paper_rows: 1_270_432,
        paper_nnz: 8_814_880,
        target_rrn: 4.0e-16,
    },
    TableOneEntry {
        name: "atmosmodl",
        paper_rows: 1_489_752,
        paper_nnz: 10_319_760,
        target_rrn: 4.0e-16,
    },
    TableOneEntry {
        name: "atmosmodm",
        paper_rows: 1_489_752,
        paper_nnz: 10_319_760,
        target_rrn: 4.0e-16,
    },
    TableOneEntry {
        name: "cfd2",
        paper_rows: 123_440,
        paper_nnz: 3_085_406,
        target_rrn: 1.8e-10,
    },
    TableOneEntry {
        name: "HV15R",
        paper_rows: 2_017_169,
        paper_nnz: 283_073_458,
        target_rrn: 1.6e-02,
    },
    TableOneEntry {
        name: "lung2",
        paper_rows: 109_460,
        paper_nnz: 492_564,
        target_rrn: 1.8e-08,
    },
    TableOneEntry {
        name: "parabolic_fem",
        paper_rows: 525_825,
        paper_nnz: 3_674_625,
        target_rrn: 4.0e-16,
    },
    TableOneEntry {
        name: "PR02R",
        paper_rows: 161_070,
        paper_nnz: 8_185_136,
        target_rrn: 4.0e-03,
    },
    TableOneEntry {
        name: "RM07R",
        paper_rows: 381_689,
        paper_nnz: 37_464_962,
        target_rrn: 8.0e-03,
    },
    TableOneEntry {
        name: "StocF-1465",
        paper_rows: 1_465_137,
        paper_nnz: 21_005_389,
        target_rrn: 4.0e-06,
    },
];

/// A built suite problem: metadata plus the assembled operator.
pub struct SuiteMatrix {
    pub entry: TableOneEntry,
    pub matrix: Csr,
}

/// Names of all suite matrices in Table I order.
pub fn names() -> Vec<&'static str> {
    TABLE_ONE.iter().map(|e| e.name).collect()
}

/// Stopping target for the *synthetic analogue* of `name`.
///
/// The paper derives each target from what 20 000 iterations of plain
/// f64 GMRES achieve on its system, "with some wiggle room" (§V-C). The
/// same procedure applied to the analogues yields these values; where an
/// analogue reaches the paper's Table I target trivially or not at all,
/// the analogue-calibrated value replaces it (deviations recorded in
/// EXPERIMENTS.md).
pub fn analogue_target(name: &str) -> Option<f64> {
    Some(match name {
        "atmosmodd" | "atmosmodj" | "atmosmodl" | "atmosmodm" => 4.0e-16,
        "cfd2" => 1.8e-10,
        "HV15R" => 4.0e-10,
        "lung2" => 1.8e-08,
        "parabolic_fem" => 4.0e-16,
        "PR02R" => 1.0e-12,
        "RM07R" => 8.0e-10,
        "StocF-1465" => 4.0e-06,
        _ => return None,
    })
}

/// Look up the Table I metadata for `name`.
pub fn entry(name: &str) -> Option<&'static TableOneEntry> {
    TABLE_ONE.iter().find(|e| e.name == name)
}

/// Grid edge scaled by `scale`, with a floor so tiny test scales stay valid.
fn dim(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(4)
}

/// Build the synthetic analogue of `name` at linear-dimension `scale`
/// (1.0 = default experiment size, chosen so the Krylov basis exceeds
/// CPU caches while a solve takes seconds; the paper-scale original
/// sizes are in [`TABLE_ONE`]).
///
/// Returns `None` for unknown names.
pub fn build(name: &str, scale: f64) -> Option<SuiteMatrix> {
    let e = *entry(name)?;
    let matrix = match name {
        // Atmospheric models: non-symmetric 7-pt convection-diffusion.
        // d/j differ in wind direction, l/m are larger with milder wind
        // (mirroring the d/j vs l/m grouping of the originals).
        "atmosmodd" => conv(36, [0.55, 0.25, 0.10], 0.028, scale),
        "atmosmodj" => conv(36, [-0.55, 0.25, -0.10], 0.028, scale),
        "atmosmodl" => conv(40, [0.30, 0.15, 0.05], 0.032, scale),
        "atmosmodm" => conv(40, [0.35, -0.12, 0.04], 0.036, scale),
        // SPD pressure solve, high nnz/row: 27-pt symmetric-ish stencil.
        "cfd2" => {
            let d = dim(30, scale);
            gen::stencil_27pt(d, d, d, 0.0, 0.02)
        }
        // Huge CFD matrix whose value ordering keeps neighbouring Krylov
        // entries at similar magnitude: smooth-in-z scaling (§VI-A).
        "HV15R" => {
            let d = dim(24, scale);
            let mut a = gen::stencil_27pt(d, d, d, 0.25, -0.045);
            let phi = gen::phi_smooth_z(d, d, d, 20);
            gen::apply_similarity_scaling(&mut a, &phi);
            a
        }
        // Airway-tree transport, ~3.5 nnz/row.
        "lung2" => {
            let levels = ((16.0 + scale.log2()).round() as u32).clamp(6, 24);
            gen::tree_transport(levels, 0.45, 0.02)
        }
        // Implicit-Euler heat equation: SPD, well conditioned.
        "parabolic_fem" => {
            let d = dim(40, scale);
            gen::diffusion_3d(d, d, d, |_, _, _| 1.0, 0.30)
        }
        // Reactive flow with spatially-decorrelated magnitudes: the FRSZ2
        // worst case (within-block exponent spread > l-2, Fig. 9b/10).
        // A barely-shifted convective stencil needs hundreds of
        // iterations, so the basis-compression error has time to bite.
        "PR02R" => {
            let d = dim(26, scale);
            let mut a = gen::conv_diff_3d(d, d, d, [0.45, 0.25, 0.15], 0.004);
            let phi = gen::phi_uncorrelated(a.rows(), 42, 0x5202);
            gen::apply_similarity_scaling(&mut a, &phi);
            a
        }
        // Similar physics, moderate magnitude spread: mild FRSZ2 impact.
        "RM07R" => {
            let d = dim(28, scale);
            let mut a = gen::conv_diff_3d(d, d, d, [0.50, 0.20, 0.10], 0.012);
            let phi = gen::phi_uncorrelated(a.rows(), 10, 0x0707);
            gen::apply_similarity_scaling(&mut a, &phi);
            a
        }
        // Stochastic-permeability flow: smooth log-normal-like field wide
        // enough to break float16 (range far below 2^-24) but not float32.
        "StocF-1465" => {
            let d = dim(40, scale);
            let mut a = gen::diffusion_3d(d, d, d, |_, _, _| 1.0, 0.04);
            let phi = gen::phi_smooth_field(d, d, d, 38, 0x1465);
            gen::apply_similarity_scaling(&mut a, &phi);
            a
        }
        _ => return None,
    };
    Some(SuiteMatrix { entry: e, matrix })
}

/// Shared builder for the atmosmod family.
fn conv(base: usize, wind: [f64; 3], shift: f64, scale: f64) -> Csr {
    let d = |b| dim(b, scale);
    gen::conv_diff_3d(d(base), d(base), d(base), wind, shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_paper() {
        assert_eq!(TABLE_ONE.len(), 11);
        let e = entry("atmosmodd").unwrap();
        assert_eq!(e.paper_rows, 1_270_432);
        assert_eq!(e.target_rrn, 4.0e-16);
        let h = entry("HV15R").unwrap();
        assert_eq!(h.paper_nnz, 283_073_458);
        assert_eq!(entry("PR02R").unwrap().target_rrn, 4.0e-03);
        assert!(entry("nope").is_none());
    }

    #[test]
    fn all_matrices_build_at_tiny_scale() {
        for name in names() {
            let m = build(name, 0.25).unwrap_or_else(|| panic!("{name} failed"));
            assert!(m.matrix.rows() > 0, "{name} empty");
            assert_eq!(m.matrix.rows(), m.matrix.cols(), "{name} not square");
            assert!(m.matrix.nnz() > m.matrix.rows(), "{name} too sparse");
            // Diagonal must be fully populated for Jacobi and stability.
            assert!(
                m.matrix.diagonal().iter().all(|&d| d != 0.0),
                "{name} has zero diagonal entries"
            );
        }
    }

    #[test]
    fn symmetry_classes_are_as_documented() {
        // GMRES territory: atmosmod/lung2/PR02R are non-symmetric.
        for name in ["atmosmodd", "lung2", "PR02R", "RM07R", "HV15R"] {
            let m = build(name, 0.25).unwrap();
            assert!(
                m.matrix.asymmetry() > 1e-3,
                "{name} should be non-symmetric"
            );
        }
        for name in ["cfd2", "parabolic_fem"] {
            let m = build(name, 0.25).unwrap();
            assert!(m.matrix.asymmetry() < 1e-12, "{name} should be symmetric");
        }
        // StocF scaling is a similarity transform of an SPD operator:
        // non-symmetric as stored.
        let s = build("StocF-1465", 0.2).unwrap();
        assert!(s.matrix.asymmetry() > 1e-3);
    }

    #[test]
    fn pr02r_values_span_many_binades_hv15r_smooth() {
        use crate::stats::exponent_range;
        let p = build("PR02R", 0.25).unwrap();
        let (lo, hi) = exponent_range(p.matrix.values());
        assert!(
            hi - lo >= 60,
            "PR02R analogue spread too small: {}",
            hi - lo
        );
        let h = build("HV15R", 0.25).unwrap();
        let (lo2, hi2) = exponent_range(h.matrix.values());
        assert!(hi2 - lo2 >= 8, "HV15R analogue should still span binades");
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build("PR02R", 0.2).unwrap();
        let b = build("PR02R", 0.2).unwrap();
        assert_eq!(a.matrix.values(), b.matrix.values());
        assert_eq!(a.matrix.col_indices(), b.matrix.col_indices());
    }
}
