//! Compressed-sparse-row matrix with parallel SpMV.
//!
//! SpMV is the `w := A v` of GMRES step 3 — memory-bound at roughly
//! 12 bytes per non-zero (8 B value + 4 B column index). Row-parallel
//! execution keeps per-row accumulation serial, so results are
//! bit-deterministic regardless of thread count.

use crate::matrix::SparseMatrix;

/// Sparse matrix in CSR format (`u32` column indices).
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from row-major-sorted, duplicate-free triplets.
    pub fn from_sorted_coo(rows: usize, cols: usize, entries: &[(u32, u32, f64)]) -> Self {
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = entries.iter().map(|&(_, c, _)| c).collect();
        let values = entries.iter().map(|&(_, _, v)| v).collect();
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Csr {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Stored entries per row, in row order (the input of the format
    /// converters and the selection heuristic).
    pub fn row_lengths(&self) -> impl Iterator<Item = u32> + '_ {
        self.row_ptr.windows(2).map(|w| (w[1] - w[0]) as u32)
    }

    /// Mutable values (used by scaling transformations).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// `y := A x` (parallel over row chunks, deterministic).
    ///
    /// Each row is accumulated serially by exactly one worker through
    /// the shared `crate::matrix::par_over_rows` driver (private), so
    /// the result is bit-identical to [`Csr::spmv_serial`] at any
    /// thread count.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let values = &self.values;
        crate::matrix::par_over_rows(y, |i| {
            let mut acc = 0.0;
            for idx in row_ptr[i]..row_ptr[i + 1] {
                acc += values[idx] * x[col_idx[idx] as usize];
            }
            acc
        });
    }

    /// `Y := A X` for `width` interleaved right-hand sides (fused: each
    /// stored entry is read once and multiplied into all `width`
    /// outputs). Same [`crate::matrix`] chunk geometry as `spmv`, each
    /// `(row, rhs)` accumulated serially in entry order → bit-identical
    /// to `width` separate [`Csr::spmv`] calls at any thread count.
    pub fn spmm_into(&self, x: &[f64], y: &mut [f64], width: usize) {
        assert!(width >= 1, "spmm width must be positive");
        assert_eq!(x.len(), self.cols * width, "x length mismatch");
        assert_eq!(y.len(), self.rows * width, "y length mismatch");
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let values = &self.values;
        crate::matrix::par_over_row_blocks(y, width, |i, out| {
            out.fill(0.0);
            for idx in row_ptr[i]..row_ptr[i + 1] {
                let v = values[idx];
                let xs = &x[col_idx[idx] as usize * width..][..width];
                for (acc, xv) in out.iter_mut().zip(xs) {
                    *acc += v * xv;
                }
            }
        });
    }

    /// Matrix-powers panel `[Ax, A²x, …, Aˢx]` (fused repeated apply:
    /// the CSR array borrows are hoisted out of the power loop). Same
    /// chunk geometry and per-row accumulation order as [`Csr::spmv`],
    /// each power consuming the completed previous power →
    /// bit-identical to `s` separate `spmv` calls at any thread count.
    pub fn spmv_powers_into(&self, x: &[f64], ys: &mut [f64], s: usize) {
        assert!(s >= 1, "spmv_powers s must be positive");
        assert_eq!(self.rows, self.cols, "matrix powers need a square operator");
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(ys.len(), self.rows * s, "ys length mismatch");
        let row_ptr = &self.row_ptr;
        let col_idx = &self.col_idx;
        let values = &self.values;
        let n = self.rows;
        for p in 0..s {
            let (done, rest) = ys.split_at_mut(p * n);
            let src: &[f64] = if p == 0 { x } else { &done[(p - 1) * n..] };
            let dst = &mut rest[..n];
            crate::matrix::par_over_rows(dst, |i| {
                let mut acc = 0.0;
                for idx in row_ptr[i]..row_ptr[i + 1] {
                    acc += values[idx] * src[col_idx[idx] as usize];
                }
                acc
            });
        }
    }

    /// `y := A x` computed serially (reference for tests).
    pub fn spmv_serial(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[idx] * x[self.col_idx[idx] as usize];
            }
            *yi = acc;
        }
    }

    /// Allocating convenience wrapper around [`Csr::spmv`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.spmv(x, &mut y);
        y
    }

    /// Main-diagonal entries (zero where the diagonal is absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows.min(self.cols)];
        for (i, di) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            if let Ok(pos) = cols.binary_search(&(i as u32)) {
                *di = vals[pos];
            }
        }
        d
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[idx] as usize;
                let dst = cursor[c];
                cursor[c] += 1;
                col_idx[dst] = r as u32;
                values[dst] = self.values[idx];
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Relative asymmetry `‖A − Aᵀ‖_F / ‖A‖_F` (0 for symmetric).
    pub fn asymmetry(&self) -> f64 {
        let t = self.transpose();
        let mut diff = 0.0;
        let mut norm = 0.0;
        for i in 0..self.rows {
            let (ca, va) = self.row(i);
            let (cb, vb) = t.row(i);
            let mut pa = 0;
            let mut pb = 0;
            while pa < ca.len() || pb < cb.len() {
                let (c1, c2) = (
                    ca.get(pa).copied().unwrap_or(u32::MAX),
                    cb.get(pb).copied().unwrap_or(u32::MAX),
                );
                let (x, y) = if c1 == c2 {
                    pa += 1;
                    pb += 1;
                    (va[pa - 1], vb[pb - 1])
                } else if c1 < c2 {
                    pa += 1;
                    (va[pa - 1], 0.0)
                } else {
                    pb += 1;
                    (0.0, vb[pb - 1])
                };
                diff += (x - y) * (x - y);
                norm += x * x;
            }
        }
        if norm == 0.0 {
            0.0
        } else {
            (diff / norm).sqrt()
        }
    }

    /// Bytes streamed by one SpMV (values + column indices + row
    /// pointers + input/output vectors) — drives the performance model.
    pub fn spmv_bytes(&self) -> usize {
        self.nnz() * (8 + 4) + (self.rows + 1) * 8 + self.cols * 8 + self.rows * 8
    }
}

impl SparseMatrix for Csr {
    fn rows(&self) -> usize {
        Csr::rows(self)
    }

    fn cols(&self) -> usize {
        Csr::cols(self)
    }

    fn nnz(&self) -> usize {
        Csr::nnz(self)
    }

    fn format_name(&self) -> &'static str {
        "csr"
    }

    fn storage_bytes(&self) -> usize {
        self.nnz() * (8 + 4) + (self.rows + 1) * 8
    }

    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(u32, f64)) {
        let (cols, vals) = self.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            f(c, v);
        }
    }

    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        Csr::spmv(self, x, y)
    }

    fn spmm_into(&self, x: &[f64], y: &mut [f64], width: usize) {
        Csr::spmm_into(self, x, y, width)
    }

    fn spmv_powers_into(&self, x: &[f64], ys: &mut [f64], s: usize) {
        Csr::spmv_powers_into(self, x, ys, s)
    }

    fn diagonal(&self) -> Vec<f64> {
        Csr::diagonal(self)
    }

    fn spmv_bytes(&self) -> usize {
        Csr::spmv_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn small() -> Csr {
        // [2 1 0]
        // [0 3 0]
        // [4 0 5]
        let mut m = Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            m.push(r, c, v);
        }
        m.to_csr()
    }

    #[test]
    fn spmv_matches_dense_arithmetic() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.mul_vec(&x), vec![4.0, 6.0, 19.0]);
    }

    #[test]
    fn parallel_and_serial_spmv_bitwise_equal() {
        // Big enough to span several row chunks.
        let n = 5000;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.5 + (i % 7) as f64);
            if i + 1 < n {
                m.push(i, i + 1, -1.0 - (i % 3) as f64 * 0.25);
                m.push(i + 1, i, -0.75);
            }
        }
        let a = m.to_csr();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        a.spmv_serial(&x, &mut y2);
        for i in 0..n {
            assert_eq!(y1[i].to_bits(), y2[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn spmv_bit_identical_across_thread_counts() {
        let n = 20_000;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 4.0 + ((i % 11) as f64) * 0.125);
            if i + 17 < n {
                m.push(i, i + 17, -((i % 5) as f64) * 0.3 - 0.1);
                m.push(i + 17, i, 0.77);
            }
        }
        let a = m.to_csr();
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.21).cos()).collect();
        let mut reference = vec![0.0; n];
        a.spmv_serial(&x, &mut reference);
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut y = vec![0.0; n];
            pool.install(|| a.spmv(&x, &mut y));
            for i in 0..n {
                assert_eq!(
                    y[i].to_bits(),
                    reference[i].to_bits(),
                    "row {i} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn identity_is_noop() {
        let a = Csr::identity(10);
        let x: Vec<f64> = (0..10).map(|i| i as f64 * 1.5).collect();
        assert_eq!(a.mul_vec(&x), x);
        assert_eq!(a.nnz(), 10);
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = small();
        assert_eq!(a.diagonal(), vec![2.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.row(0), (&[0u32, 2][..], &[2.0, 4.0][..]));
        let tt = t.transpose();
        assert_eq!(tt.row_ptr(), a.row_ptr());
        assert_eq!(tt.col_indices(), a.col_indices());
        assert_eq!(tt.values(), a.values());
    }

    #[test]
    fn asymmetry_detects_nonsymmetric() {
        let a = small();
        assert!(a.asymmetry() > 0.1);
        let mut s = Coo::new(2, 2);
        s.push(0, 0, 1.0);
        s.push(0, 1, 2.0);
        s.push(1, 0, 2.0);
        s.push(1, 1, 1.0);
        assert_eq!(s.to_csr().asymmetry(), 0.0);
    }
}
