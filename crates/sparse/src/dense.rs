//! Deterministic parallel dense-vector kernels.
//!
//! Every kernel in the GMRES orthogonalization (dots, axpys, norms) is
//! memory-bound; these implementations parallelize over fixed-size
//! chunks and reduce partial sums **serially in chunk order**, so the
//! floating-point result is identical for any thread count — a
//! prerequisite for the reproducibility tests (same seed ⇒ identical
//! residual history).

use rayon::prelude::*;

/// Elements per parallel chunk. Fixed so reduction order is fixed:
/// partial sums are always per-`CHUNK`, whatever the thread count or
/// task grouping, so changing the pool's grain never moves a rounding.
pub const CHUNK: usize = 8192;

/// Minimum chunks per pool task. A single 8 KiB·8 chunk of axpy is
/// ~64 KiB of streaming — only a few µs — so tasks bundle several
/// chunks to keep per-task overhead (one atomic claim) well under 1 %.
const MIN_CHUNKS_PER_TASK: usize = 4;

/// Below this length the parallel runtime costs more than it saves.
const PAR_THRESHOLD: usize = 16 * 1024;

/// Dot product `xᵀ y`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        return x.iter().zip(y).map(|(a, b)| a * b).sum();
    }
    let partials: Vec<f64> = x
        .par_chunks(CHUNK)
        .zip(y.par_chunks(CHUNK))
        .with_min_len(MIN_CHUNKS_PER_TASK)
        .map(|(cx, cy)| cx.iter().zip(cy).map(|(a, b)| a * b).sum())
        .collect();
    partials.iter().sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y := y + alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    if x.len() < PAR_THRESHOLD {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
        return;
    }
    y.par_chunks_mut(CHUNK)
        .zip(x.par_chunks(CHUNK))
        .with_min_len(MIN_CHUNKS_PER_TASK)
        .for_each(|(cy, cx)| {
            for (yi, xi) in cy.iter_mut().zip(cx) {
                *yi += alpha * xi;
            }
        });
}

/// `x := alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    if x.len() < PAR_THRESHOLD {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
        return;
    }
    x.par_chunks_mut(CHUNK)
        .with_min_len(MIN_CHUNKS_PER_TASK)
        .for_each(|c| {
            for xi in c {
                *xi *= alpha;
            }
        });
}

/// `y := x`.
pub fn copy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// `z := x - y`.
pub fn sub(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    if x.len() < PAR_THRESHOLD {
        for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
            *zi = xi - yi;
        }
        return;
    }
    z.par_chunks_mut(CHUNK)
        .zip(x.par_chunks(CHUNK))
        .zip(y.par_chunks(CHUNK))
        .with_min_len(MIN_CHUNKS_PER_TASK)
        .for_each(|((cz, cx), cy)| {
            for ((zi, xi), yi) in cz.iter_mut().zip(cx).zip(cy) {
                *zi = xi - yi;
            }
        });
}

/// The deterministic right-hand side of §V-B: `s[i] = sin(i)`,
/// `x_sol = s / ‖s‖₂`, `b = A · x_sol`. Returns `(x_sol, b)`.
pub fn manufactured_rhs(a: &crate::Csr) -> (Vec<f64>, Vec<f64>) {
    let n = a.cols();
    let mut s: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let nrm = norm2(&s);
    scale(1.0 / nrm, &mut s);
    let b = a.mul_vec(&s);
    (s, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small_and_large_deterministic() {
        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.1).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.2).cos()).collect();
        let d1 = dot(&x, &y);
        let d2 = dot(&x, &y);
        assert_eq!(
            d1.to_bits(),
            d2.to_bits(),
            "parallel dot must be deterministic"
        );
        // Matches a compensated serial reference within rounding slack.
        let serial: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((d1 - serial).abs() <= 1e-9 * serial.abs().max(1.0));
    }

    #[test]
    fn dot_bit_identical_across_thread_counts() {
        // Floating-point addition is not associative: this passes only
        // because partials are always per-CHUNK and summed in chunk
        // order, regardless of how the pool groups chunks into tasks.
        let n = 300_000;
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.11).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.07).cos()).collect();
        let baseline = dot(&x, &y);
        for threads in [1, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let d = pool.install(|| dot(&x, &y));
            assert_eq!(d.to_bits(), baseline.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn norm_of_unit_vectors() {
        let mut e = vec![0.0; 50_000];
        e[123] = -3.0;
        assert_eq!(norm2(&e), 3.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_scale_sub_small() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0, 18.0]);
        let mut z = vec![0.0; 3];
        sub(&y, &x, &mut z);
        assert_eq!(z, vec![5.0, 10.0, 15.0]);
    }

    #[test]
    fn axpy_large_matches_serial() {
        let n = 70_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut y2 = y1.clone();
        axpy(-1.5, &x, &mut y1);
        for (yi, xi) in y2.iter_mut().zip(&x) {
            *yi += -1.5 * xi;
        }
        assert_eq!(y1, y2);
    }

    #[test]
    fn manufactured_rhs_properties() {
        let a = crate::Csr::identity(1000);
        let (x, b) = manufactured_rhs(&a);
        assert!((norm2(&x) - 1.0).abs() < 1e-14, "solution is unit norm");
        // For the identity, b == x.
        assert_eq!(x, b);
    }
}
