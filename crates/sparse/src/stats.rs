//! Value and exponent statistics for matrices and Krylov vectors.
//!
//! Backs Figure 2 (value/exponent histograms of Krylov vectors — the
//! decorrelation argument of §III-A) and Figure 10 (base-2 exponent
//! histogram of PR02R's non-zeros), plus the row-length statistics
//! driving the sparse-format auto-selection in [`crate::select`].

/// Row-length summary of a sparse matrix: the inputs of the ELL / SELL
/// padding estimates in [`crate::select::auto_format`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RowLengthStats {
    /// Number of rows.
    pub rows: usize,
    /// Total stored non-zeros.
    pub nnz: usize,
    /// Mean stored entries per row (0 for an empty matrix).
    pub mean: f64,
    /// Maximum stored entries in any row.
    pub max: usize,
    /// Population variance of the row lengths.
    pub variance: f64,
}

/// Compute [`RowLengthStats`] from a CSR matrix (one pass over
/// `row_ptr`).
pub fn row_length_stats(a: &crate::Csr) -> RowLengthStats {
    row_length_stats_from(a.row_lengths(), a.nnz())
}

/// Compute [`RowLengthStats`] from an explicit row-length stream in a
/// single pass (for callers that already hold the lengths).
pub fn row_length_stats_from(lengths: impl Iterator<Item = u32>, nnz: usize) -> RowLengthStats {
    let mut rows = 0usize;
    let mut max = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0.0f64;
    for len in lengths {
        let len = len as usize;
        rows += 1;
        max = max.max(len);
        sum += len;
        sum_sq += (len * len) as f64;
    }
    if rows == 0 {
        return RowLengthStats::default();
    }
    let mean = sum as f64 / rows as f64;
    RowLengthStats {
        rows,
        nnz,
        mean,
        max,
        variance: (sum_sq / rows as f64 - mean * mean).max(0.0),
    }
}

/// Unbiased base-2 exponent of a nonzero finite value
/// (`floor(log2(|v|))`, exact, including subnormals).
#[inline]
pub fn exponent_of(v: f64) -> i32 {
    debug_assert!(v != 0.0 && v.is_finite());
    let bits = v.to_bits();
    let e = ((bits >> 52) & 0x7FF) as i32;
    if e != 0 {
        e - 1023
    } else {
        // Subnormal: leading mantissa bit at position p encodes 2^(p-1074),
        // and p = 63 - leading_zeros.
        let m = bits & ((1u64 << 52) - 1);
        -1011 - m.leading_zeros() as i32
    }
}

/// Histogram of base-2 exponents of the nonzero entries, as sorted
/// `(exponent, count)` pairs (Fig. 10).
pub fn exponent_histogram(values: &[f64]) -> Vec<(i32, usize)> {
    let mut map = std::collections::BTreeMap::new();
    for &v in values {
        if v != 0.0 && v.is_finite() {
            *map.entry(exponent_of(v)).or_insert(0usize) += 1;
        }
    }
    map.into_iter().collect()
}

/// `(min, max)` base-2 exponent over nonzero entries; `(0, 0)` if none.
pub fn exponent_range(values: &[f64]) -> (i32, i32) {
    let mut lo = i32::MAX;
    let mut hi = i32::MIN;
    for &v in values {
        if v != 0.0 && v.is_finite() {
            let e = exponent_of(v);
            lo = lo.min(e);
            hi = hi.max(e);
        }
    }
    if lo > hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

/// Fixed-width linear histogram of raw values over `[lo, hi]` (Fig. 2a).
/// Out-of-range values land in the edge bins. Returns bin centers and counts.
pub fn value_histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &v in values {
        let b = ((v - lo) / w).floor();
        let b = (b.max(0.0) as usize).min(bins - 1);
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + (i as f64 + 0.5) * w, c))
        .collect()
}

/// Summary used by the Fig. 2 commentary: are the values uniform-ish
/// while the exponents cluster? Returns (distinct exponents covering 90 %
/// of mass, total distinct exponents).
pub fn exponent_concentration(values: &[f64]) -> (usize, usize) {
    let hist = exponent_histogram(values);
    let total: usize = hist.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return (0, 0);
    }
    let mut counts: Vec<usize> = hist.iter().map(|&(_, c)| c).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc = 0usize;
    let mut k = 0usize;
    for c in counts {
        acc += c;
        k += 1;
        if acc * 10 >= total * 9 {
            break;
        }
    }
    (k, hist.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_length_stats_on_known_matrix() {
        let mut m = crate::Coo::new(4, 4);
        // Row lengths 2, 1, 3, 0.
        m.push(0, 0, 1.0);
        m.push(0, 1, 1.0);
        m.push(1, 1, 1.0);
        m.push(2, 0, 1.0);
        m.push(2, 2, 1.0);
        m.push(2, 3, 1.0);
        let s = row_length_stats(&m.to_csr());
        assert_eq!(s.rows, 4);
        assert_eq!(s.nnz, 6);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-15);
        // Var = mean(l²) - mean² = (4+1+9+0)/4 - 2.25 = 1.25.
        assert!((s.variance - 1.25).abs() < 1e-12);

        assert_eq!(
            row_length_stats(&crate::Coo::new(0, 0).to_csr()),
            RowLengthStats::default()
        );
    }

    #[test]
    fn exponent_of_known_values() {
        assert_eq!(exponent_of(1.0), 0);
        assert_eq!(exponent_of(1.5), 0);
        assert_eq!(exponent_of(2.0), 1);
        assert_eq!(exponent_of(-0.25), -2);
        assert_eq!(exponent_of(0.75), -1);
        assert_eq!(exponent_of(f64::MIN_POSITIVE), -1022);
        assert_eq!(exponent_of(f64::MIN_POSITIVE / 2.0), -1023);
        assert_eq!(exponent_of(f64::from_bits(1)), -1074);
    }

    #[test]
    fn histogram_counts_and_range() {
        let vals = [1.0, 1.5, -2.0, 0.25, 0.0, 3.9];
        let h = exponent_histogram(&vals);
        // exponents: 0, 0, 1, -2, (skip 0.0), 1
        assert_eq!(h, vec![(-2, 1), (0, 2), (1, 2)]);
        assert_eq!(exponent_range(&vals), (-2, 1));
        assert_eq!(exponent_range(&[0.0]), (0, 0));
    }

    #[test]
    fn value_histogram_bins() {
        let vals = [-1.0, -0.5, 0.0, 0.5, 0.99, 2.0];
        let h = value_histogram(&vals, -1.0, 1.0, 4);
        let counts: Vec<usize> = h.iter().map(|&(_, c)| c).collect();
        // bins: [-1,-0.5): {-1}, [-0.5,0): {-0.5}, [0,0.5): {0}, [0.5,1]: {0.5,0.99,2.0->clamped}
        assert_eq!(counts, vec![1, 1, 1, 3]);
        assert_eq!(counts.iter().sum::<usize>(), 6);
    }

    #[test]
    fn concentration_separates_clustered_from_wide() {
        // Clustered: all exponents equal.
        let clustered: Vec<f64> = (0..100).map(|i| 1.0 + i as f64 / 256.0).collect();
        let (k, total) = exponent_concentration(&clustered);
        assert_eq!((k, total), (1, 1));
        // Wide: one value per binade.
        let wide: Vec<f64> = (0..40).map(|i| f64::powi(2.0, i)).collect();
        let (k2, total2) = exponent_concentration(&wide);
        assert_eq!(total2, 40);
        assert!(k2 >= 36);
    }
}
