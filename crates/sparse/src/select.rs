//! Data-driven sparse-format auto-selection.
//!
//! SpMV is bandwidth-bound, so the format question reduces to a traffic
//! trade-off: ELL and SELL-C-σ give warps coalesced value/index streams
//! but pay for padding slots that CSR never stores. The selection
//! heuristic therefore compares *measured padding ratios* (padded slots
//! over non-zeros, computed exactly from the row-length distribution of
//! [`crate::stats::row_length_stats`]) against fixed thresholds:
//!
//! 1. **ELL** when `rows·max_len / nnz ≤ 1.10` — near-uniform rows
//!    (stencil matrices): full-matrix padding costs ≤ 10 % extra
//!    traffic, far less than the coalescing win, and ELL needs no
//!    permutation bookkeeping.
//! 2. **SELL-C-σ** (`C = 32`, `σ = 256`) when its exact per-slice
//!    padding ratio is ≤ 1.30 — irregular but not pathological rows:
//!    σ-sorting packs similar-length rows into shared slices.
//! 3. **CSR** otherwise — a few very long rows (power-law graphs,
//!    dense coupling rows) would blow up any padded format.
//!
//! The decision is a pure function of the row-length distribution, so
//! it is deterministic for a given matrix.

use crate::matrix::SparseMatrix;
use crate::sell::SellCSigma;
use crate::stats::row_length_stats_from;
use crate::{Csr, Ell};

/// Default SELL slice height: one warp (the paper's `BS = 32` mandate
/// makes 32 the natural coalescing unit on NVIDIA GPUs).
pub const SELL_DEFAULT_C: usize = 32;

/// Default SELL sorting window: 8 slices. Large enough to pack
/// similar-length rows together, small enough to keep the permutation
/// local (scattered `y` writes stay within a 256-row neighbourhood).
pub const SELL_DEFAULT_SIGMA: usize = 256;

/// ELL is chosen when full-matrix padding adds at most this factor.
pub const ELL_MAX_PADDING: f64 = 1.10;

/// SELL is chosen when per-slice padding adds at most this factor.
pub const SELL_MAX_PADDING: f64 = 1.30;

/// Outcome of [`auto_format`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormatChoice {
    Csr,
    Ell,
    Sell { c: usize, sigma: usize },
}

impl FormatChoice {
    /// Short label for reports (matches `SparseMatrix::format_name`).
    pub fn name(&self) -> &'static str {
        match self {
            FormatChoice::Csr => "csr",
            FormatChoice::Ell => "ell",
            FormatChoice::Sell { .. } => "sell-c-sigma",
        }
    }

    /// Materialize the chosen format from a CSR matrix (clones for
    /// CSR, converts otherwise).
    pub fn build(&self, a: &Csr) -> Box<dyn SparseMatrix> {
        match *self {
            FormatChoice::Csr => Box::new(a.clone()),
            FormatChoice::Ell => Box::new(Ell::from_csr(a)),
            FormatChoice::Sell { c, sigma } => Box::new(SellCSigma::from_csr(a, c, sigma)),
        }
    }
}

/// Exact SELL-C-σ padded-slot count for the given row-length
/// distribution (no matrix data touched: σ-sort the lengths, sum each
/// slice's `C · max`).
fn sell_padded_slots(row_lengths: &mut [u32], c: usize, sigma: usize) -> usize {
    for window in row_lengths.chunks_mut(sigma) {
        window.sort_unstable_by_key(|&l| std::cmp::Reverse(l));
    }
    row_lengths
        .chunks(c)
        .map(|slice| slice.iter().copied().max().unwrap_or(0) as usize * c)
        .sum()
}

/// Pick a sparse format for `a` from its row-length statistics (see
/// module docs for the heuristic and thresholds). Deterministic.
pub fn auto_format(a: &Csr) -> FormatChoice {
    let mut lengths: Vec<u32> = a.row_lengths().collect();
    let stats = row_length_stats_from(lengths.iter().copied(), a.nnz());
    if stats.nnz == 0 || stats.rows == 0 {
        return FormatChoice::Csr;
    }
    let ell_padding = (stats.rows * stats.max) as f64 / stats.nnz as f64;
    if ell_padding <= ELL_MAX_PADDING {
        return FormatChoice::Ell;
    }
    let padded = sell_padded_slots(&mut lengths, SELL_DEFAULT_C, SELL_DEFAULT_SIGMA);
    if padded as f64 / stats.nnz as f64 <= SELL_MAX_PADDING {
        return FormatChoice::Sell {
            c: SELL_DEFAULT_C,
            sigma: SELL_DEFAULT_SIGMA,
        };
    }
    FormatChoice::Csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Coo};

    #[test]
    fn uniform_stencil_selects_ell() {
        let a = gen::conv_diff_3d(12, 12, 12, [0.3, 0.2, 0.1], 0.2);
        assert_eq!(auto_format(&a), FormatChoice::Ell);
    }

    #[test]
    fn irregular_rows_select_sell() {
        // Row lengths cycle 1..=12: max/mean ≈ 1.85 rules out ELL, but
        // σ-sorted 32-row slices are nearly dense.
        let n = 2048;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 4.0);
            for k in 0..(i % 12) {
                let c = (i + 7 * (k + 1)) % n;
                if c != i {
                    m.push(i, c, -0.1);
                }
            }
        }
        let choice = auto_format(&m.to_csr());
        assert_eq!(
            choice,
            FormatChoice::Sell {
                c: SELL_DEFAULT_C,
                sigma: SELL_DEFAULT_SIGMA
            }
        );
    }

    #[test]
    fn dense_coupling_row_falls_back_to_csr() {
        // One row couples to everything: any padded format would store
        // a ~n-wide slice for it plus its 31 slice-mates.
        let n = 4096;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 2.0);
        }
        for c in 1..n {
            m.push(0, c, 0.5);
        }
        assert_eq!(auto_format(&m.to_csr()), FormatChoice::Csr);
    }

    #[test]
    fn empty_matrix_is_csr_and_choice_is_deterministic() {
        assert_eq!(auto_format(&Coo::new(0, 0).to_csr()), FormatChoice::Csr);
        let a = gen::conv_diff_3d(8, 8, 8, [0.4, 0.0, 0.0], 0.1);
        assert_eq!(auto_format(&a), auto_format(&a));
    }

    #[test]
    fn build_materializes_the_chosen_format() {
        let a = gen::conv_diff_3d(6, 6, 6, [0.2, 0.1, 0.0], 0.2);
        let choice = auto_format(&a);
        let m = choice.build(&a);
        assert_eq!(m.format_name(), choice.name());
        assert_eq!(m.nnz(), a.nnz());
        let x = vec![1.0; a.cols()];
        let mut y = vec![0.0; a.rows()];
        m.spmv(&x, &mut y);
        assert_eq!(y, a.mul_vec(&x));
    }

    #[test]
    fn sell_padded_slots_matches_constructed_matrix() {
        let a = gen::tree_transport(9, 0.3, 0.4);
        let mut lengths: Vec<u32> = a.row_lengths().collect();
        let predicted = sell_padded_slots(&mut lengths, 32, 256);
        let built = crate::SellCSigma::from_csr(&a, 32, 256);
        assert_eq!(predicted, built.values().len());
    }
}
