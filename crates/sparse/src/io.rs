//! MatrixMarket (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate real {general,symmetric}` and
//! `matrix coordinate integer {general,symmetric}` headers — enough to
//! load every Table I matrix from the SuiteSparse collection when the
//! real files are available (`--mtx PATH` in the experiment binaries).

use crate::Coo;
use std::io::{BufRead, Write};

/// Parse a MatrixMarket stream into COO form.
///
/// Symmetric files are expanded (the strictly-lower triangle is
/// mirrored); an entry above the diagonal in a symmetric file is a
/// parse error, per the MatrixMarket specification. 1-based indices
/// are converted to 0-based.
pub fn read_matrix_market<R: BufRead>(reader: R) -> std::io::Result<Coo> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = reader.lines();

    let header = lines
        .next()
        .ok_or_else(|| bad("empty MatrixMarket file"))??;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if h.len() < 5 || !h[0].starts_with("%%matrixmarket") || h[1] != "matrix" {
        return Err(bad("not a MatrixMarket matrix header"));
    }
    if h[2] != "coordinate" {
        return Err(bad("only coordinate format is supported"));
    }
    if h[3] != "real" && h[3] != "integer" {
        return Err(bad("only real/integer fields are supported"));
    }
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(bad(&format!("unsupported symmetry '{other}'"))),
    };

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| bad("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break t.to_string();
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(bad("size line must be 'rows cols nnz'"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(rows, cols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad entry row"))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad entry col"))?;
        let v: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad entry value"))?;
        if r < 1 || r > rows || c < 1 || c > cols {
            return Err(bad(&format!("entry ({r},{c}) out of bounds")));
        }
        // The MatrixMarket spec requires symmetric files to store the
        // lower triangle only. Accepting upper-triangle entries would
        // let a file storing *both* triangles slip through, silently
        // doubling every off-diagonal value when duplicates are summed
        // on CSR conversion — so reject per spec instead.
        if symmetric && c > r {
            return Err(bad(&format!(
                "symmetric file stores upper-triangle entry ({r},{c}); \
                 only the lower triangle (row >= col) is allowed"
            )));
        }
        coo.push(r - 1, c - 1, v);
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(bad(&format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo)
}

/// Value field of a MatrixMarket header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmField {
    /// Values written with 17 significant digits (exact f64 round trip).
    Real,
    /// Values written as integers; every entry must be integral.
    Integer,
}

/// Symmetry declaration of a MatrixMarket header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MmSymmetry {
    General,
    /// Only the lower triangle is stored; the matrix must be
    /// numerically symmetric.
    Symmetric,
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(a: &crate::Csr, w: W) -> std::io::Result<()> {
    write_matrix_market_with(a, MmField::Real, MmSymmetry::General, w)
}

/// Write a CSR matrix with an explicit header.
///
/// Fails with `InvalidInput` if `Symmetric` is requested for a matrix
/// that is not numerically symmetric, or `Integer` for a matrix with
/// non-integral values — rather than silently writing a file that
/// would not round-trip.
pub fn write_matrix_market_with<W: Write>(
    a: &crate::Csr,
    field: MmField,
    symmetry: MmSymmetry,
    mut w: W,
) -> std::io::Result<()> {
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
    if symmetry == MmSymmetry::Symmetric && (a.rows() != a.cols() || a.asymmetry() != 0.0) {
        return Err(invalid(
            "symmetric header requested for a non-symmetric matrix".into(),
        ));
    }
    if field == MmField::Integer {
        // Integral, finite, and exactly representable as i64 (every
        // integral f64 below 2^63 is): anything else would be written
        // saturated/garbled and break the round-trip guarantee.
        let representable =
            |v: f64| v.is_finite() && v.fract() == 0.0 && v.abs() < 9.223372036854776e18;
        if let Some(v) = a.values().iter().find(|v| !representable(**v)) {
            return Err(invalid(format!(
                "integer header requested but value {v} is not an i64-representable integer"
            )));
        }
    }
    let (field_name, symmetry_name) = (
        match field {
            MmField::Real => "real",
            MmField::Integer => "integer",
        },
        match symmetry {
            MmSymmetry::General => "general",
            MmSymmetry::Symmetric => "symmetric",
        },
    );
    writeln!(
        w,
        "%%MatrixMarket matrix coordinate {field_name} {symmetry_name}"
    )?;
    writeln!(w, "% written by the FRSZ2 reproduction workspace")?;
    // For symmetric files only the lower triangle (r >= c) is stored,
    // and the size line counts stored entries.
    let keep = |r: usize, c: u32| symmetry == MmSymmetry::General || c as usize <= r;
    let stored: usize = (0..a.rows())
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter().filter(|&&c| keep(i, c)).count()
        })
        .sum();
    writeln!(w, "{} {} {}", a.rows(), a.cols(), stored)?;
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            if !keep(i, *c) {
                continue;
            }
            match field {
                MmField::Real => writeln!(w, "{} {} {:.17e}", i + 1, c + 1, v)?,
                MmField::Integer => writeln!(w, "{} {} {}", i + 1, c + 1, *v as i64)?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment line\n\
                    3 3 4\n\
                    1 1 2.5\n\
                    2 2 -1.0\n\
                    3 1 4.0\n\
                    3 3 1e-3\n";
        let coo = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        let a = coo.to_csr();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row(2), (&[0u32, 2][..], &[4.0, 1e-3][..]));
    }

    #[test]
    fn parse_symmetric_mirrors_off_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 3.0\n\
                    2 1 -1.5\n";
        let a = read_matrix_market(BufReader::new(text.as_bytes()))
            .unwrap()
            .to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row(0), (&[0u32, 1][..], &[3.0, -1.5][..]));
        assert_eq!(a.row(1), (&[0u32][..], &[-1.5][..]));
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn roundtrip_write_read() {
        let m = crate::gen::conv_diff_3d(4, 3, 2, [0.2, 0.0, 0.0], 0.5);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(BufReader::new(&buf[..]))
            .unwrap()
            .to_csr();
        assert_eq!(back.rows(), m.rows());
        assert_eq!(back.nnz(), m.nnz());
        assert_eq!(back.col_indices(), m.col_indices());
        for (a, b) in back.values().iter().zip(m.values()) {
            assert_eq!(a, b, "17-digit round trip must be exact");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",                                                                   // empty
            "%%MatrixMarket matrix array real general\n2 2 4\n",                  // array format
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", // complex
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",    // OOB
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",    // count
            "%%MatrixMarket vector coordinate real general\n2 2 1\n1 1 1.0\n",    // not a matrix
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n",
            "%%MatrixMarket matrix coordinate real\n2 2 1\n1 1 1.0\n", // short header
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1\n", // pattern
            "%%MatrixMarket matrix coordinate real general\n",         // no size line
            "%%MatrixMarket matrix coordinate real general\n2 2\n",    // short size line
            "%%MatrixMarket matrix coordinate real general\n2 2 x\n",  // bad nnz
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n", // missing value
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n", // bad value
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n", // 0-based index
            // Symmetric files must store only the lower triangle; a
            // (1,2) entry would be mirrored into the wrong matrix.
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n",
            "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 1.0\n1 3 0.5\n",
        ] {
            assert!(
                read_matrix_market(BufReader::new(text.as_bytes())).is_err(),
                "should reject: {text:?}"
            );
        }
    }

    #[test]
    fn integer_symmetric_writer_roundtrip_and_header() {
        // [ 2 -1  0]
        // [-1  2 -1]    (symmetric, integral)
        // [ 0 -1  2]
        let mut m = crate::Coo::new(3, 3);
        for i in 0..3 {
            m.push(i, i, 2.0);
            if i + 1 < 3 {
                m.push(i, i + 1, -1.0);
                m.push(i + 1, i, -1.0);
            }
        }
        let a = m.to_csr();
        let mut buf = Vec::new();
        write_matrix_market_with(&a, MmField::Integer, MmSymmetry::Symmetric, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("%%MatrixMarket matrix coordinate integer symmetric"));
        // Only the 5 lower-triangle entries are stored.
        assert!(text.contains("\n3 3 5\n"), "size line in:\n{text}");
        let back = read_matrix_market(BufReader::new(&buf[..]))
            .unwrap()
            .to_csr();
        assert_eq!(back.row_ptr(), a.row_ptr());
        assert_eq!(back.col_indices(), a.col_indices());
        assert_eq!(back.values(), a.values());
    }

    #[test]
    fn writer_rejects_inconsistent_headers() {
        let asym = crate::gen::conv_diff_3d(3, 3, 3, [0.4, 0.0, 0.0], 0.1);
        assert!(asym.asymmetry() > 0.0, "test matrix must be asymmetric");
        let err = write_matrix_market_with(&asym, MmField::Real, MmSymmetry::Symmetric, Vec::new())
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

        let mut m = crate::Coo::new(2, 2);
        m.push(0, 0, 1.5);
        let frac = m.to_csr();
        let err =
            write_matrix_market_with(&frac, MmField::Integer, MmSymmetry::General, Vec::new())
                .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

        // Integral but beyond i64: `as i64` would saturate and corrupt
        // the round trip, so the writer must refuse.
        let mut m = crate::Coo::new(2, 2);
        m.push(0, 0, 1e19);
        let huge = m.to_csr();
        let err =
            write_matrix_market_with(&huge, MmField::Integer, MmSymmetry::General, Vec::new())
                .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
