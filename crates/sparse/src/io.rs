//! MatrixMarket (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate real {general,symmetric}` and
//! `matrix coordinate integer {general,symmetric}` headers — enough to
//! load every Table I matrix from the SuiteSparse collection when the
//! real files are available (`--mtx PATH` in the experiment binaries).

use crate::Coo;
use std::io::{BufRead, Write};

/// Parse a MatrixMarket stream into COO form.
///
/// Symmetric files are expanded (the strictly-lower triangle is
/// mirrored). 1-based indices are converted to 0-based.
pub fn read_matrix_market<R: BufRead>(reader: R) -> std::io::Result<Coo> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = reader.lines();

    let header = lines
        .next()
        .ok_or_else(|| bad("empty MatrixMarket file"))??;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if h.len() < 5 || !h[0].starts_with("%%matrixmarket") || h[1] != "matrix" {
        return Err(bad("not a MatrixMarket matrix header"));
    }
    if h[2] != "coordinate" {
        return Err(bad("only coordinate format is supported"));
    }
    if h[3] != "real" && h[3] != "integer" {
        return Err(bad("only real/integer fields are supported"));
    }
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(bad(&format!("unsupported symmetry '{other}'"))),
    };

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines.next().ok_or_else(|| bad("missing size line"))??;
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('%') {
            break t.to_string();
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| bad("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(bad("size line must be 'rows cols nnz'"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::with_capacity(rows, cols, if symmetric { 2 * nnz } else { nnz });
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad entry row"))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad entry col"))?;
        let v: f64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad entry value"))?;
        if r < 1 || r > rows || c < 1 || c > cols {
            return Err(bad(&format!("entry ({r},{c}) out of bounds")));
        }
        coo.push(r - 1, c - 1, v);
        if symmetric && r != c {
            coo.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(bad(&format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo)
}

/// Write a CSR matrix as `matrix coordinate real general`.
pub fn write_matrix_market<W: Write>(a: &crate::Csr, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by the FRSZ2 reproduction workspace")?;
    writeln!(w, "{} {} {}", a.rows(), a.cols(), a.nnz())?;
    for i in 0..a.rows() {
        let (cols, vals) = a.row(i);
        for (c, v) in cols.iter().zip(vals) {
            writeln!(w, "{} {} {:.17e}", i + 1, c + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parse_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment line\n\
                    3 3 4\n\
                    1 1 2.5\n\
                    2 2 -1.0\n\
                    3 1 4.0\n\
                    3 3 1e-3\n";
        let coo = read_matrix_market(BufReader::new(text.as_bytes())).unwrap();
        let a = coo.to_csr();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.row(2), (&[0u32, 2][..], &[4.0, 1e-3][..]));
    }

    #[test]
    fn parse_symmetric_mirrors_off_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 3.0\n\
                    2 1 -1.5\n";
        let a = read_matrix_market(BufReader::new(text.as_bytes()))
            .unwrap()
            .to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row(0), (&[0u32, 1][..], &[3.0, -1.5][..]));
        assert_eq!(a.row(1), (&[0u32][..], &[-1.5][..]));
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn roundtrip_write_read() {
        let m = crate::gen::conv_diff_3d(4, 3, 2, [0.2, 0.0, 0.0], 0.5);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(BufReader::new(&buf[..]))
            .unwrap()
            .to_csr();
        assert_eq!(back.rows(), m.rows());
        assert_eq!(back.nnz(), m.nnz());
        assert_eq!(back.col_indices(), m.col_indices());
        for (a, b) in back.values().iter().zip(m.values()) {
            assert_eq!(a, b, "17-digit round trip must be exact");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "",                                                                   // empty
            "%%MatrixMarket matrix array real general\n2 2 4\n",                  // array format
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n", // complex
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",    // OOB
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",    // count
        ] {
            assert!(
                read_matrix_market(BufReader::new(text.as_bytes())).is_err(),
                "should reject: {text:?}"
            );
        }
    }
}
