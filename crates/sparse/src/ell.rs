//! ELLPACK (padded, column-major) sparse storage.
//!
//! Every row is padded to the matrix-wide maximum row length `width`;
//! slot `k` of row `i` lives at `k * rows + i`, so on a GPU the lanes
//! of a warp processing 32 consecutive rows read 32 *consecutive*
//! values per step — fully coalesced as long as rows are uniform.
//! Padding makes ELL great for stencil matrices (every row the same
//! length) and terrible for matrices with a few long rows; the runtime
//! choice lives in [`crate::select`].

use crate::matrix::{par_over_row_blocks, par_over_rows, SparseMatrix};
use crate::Csr;

/// Sparse matrix in ELL format (`u32` column indices, column-major).
#[derive(Clone, Debug)]
pub struct Ell {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Padded row length (maximum over all rows).
    width: usize,
    /// Stored entries per row (`<= width`); padding slots are never read.
    row_len: Vec<u32>,
    /// `width * rows`, column-major: slot `k` of row `i` at `k*rows + i`.
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Ell {
    /// Convert from CSR, preserving each row's entry order.
    pub fn from_csr(a: &Csr) -> Ell {
        let rows = a.rows();
        let row_len: Vec<u32> = a.row_lengths().collect();
        let width = row_len.iter().copied().max().unwrap_or(0) as usize;
        let mut col_idx = vec![0u32; width * rows];
        let mut values = vec![0.0f64; width * rows];
        for i in 0..rows {
            let (cols, vals) = a.row(i);
            for (k, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                col_idx[k * rows + i] = c;
                values[k * rows + i] = v;
            }
        }
        Ell {
            rows,
            cols: a.cols(),
            nnz: a.nnz(),
            width,
            row_len,
            col_idx,
            values,
        }
    }

    /// Padded row length.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Stored slots (incl. padding) over actual non-zeros; 1.0 means no
    /// padding at all. Returns 1.0 for empty matrices.
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        (self.width * self.rows) as f64 / self.nnz as f64
    }
}

impl SparseMatrix for Ell {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format_name(&self) -> &'static str {
        "ell"
    }

    fn storage_bytes(&self) -> usize {
        // Padded values + padded indices + per-row lengths.
        self.values.len() * 8 + self.col_idx.len() * 4 + self.row_len.len() * 4
    }

    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(u32, f64)) {
        for k in 0..self.row_len[i] as usize {
            let s = k * self.rows + i;
            f(self.col_idx[s], self.values[s]);
        }
    }

    /// `y := A x`: through the shared row-parallel driver, each row
    /// accumulating serially in CSR entry order, so the result is
    /// bit-identical to `Csr::spmv`.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        let rows = self.rows;
        let row_len = &self.row_len;
        let col_idx = &self.col_idx;
        let values = &self.values;
        par_over_rows(y, |i| {
            let mut acc = 0.0;
            for k in 0..row_len[i] as usize {
                let s = k * rows + i;
                acc += values[s] * x[col_idx[s] as usize];
            }
            acc
        });
    }

    /// `Y := A X` fused over `width` interleaved right-hand sides: one
    /// read of each padded slot drives all `width` accumulators, with
    /// the same `(row, rhs)` serial entry-order accumulation and chunk
    /// geometry as `spmv` → bit-identical to `width` separate
    /// [`Ell::spmv`] calls on any format at any thread count.
    fn spmm_into(&self, x: &[f64], y: &mut [f64], width: usize) {
        assert!(width >= 1, "spmm width must be positive");
        assert_eq!(x.len(), self.cols * width, "x length mismatch");
        assert_eq!(y.len(), self.rows * width, "y length mismatch");
        let rows = self.rows;
        let row_len = &self.row_len;
        let col_idx = &self.col_idx;
        let values = &self.values;
        par_over_row_blocks(y, width, |i, out| {
            out.fill(0.0);
            for k in 0..row_len[i] as usize {
                let s = k * rows + i;
                let v = values[s];
                let xs = &x[col_idx[s] as usize * width..][..width];
                for (acc, xv) in out.iter_mut().zip(xs) {
                    *acc += v * xv;
                }
            }
        });
    }

    /// Matrix-powers panel `[Ax, A²x, …, Aˢx]` with the ELL array
    /// borrows hoisted out of the power loop; same chunk geometry and
    /// accumulation order as [`Ell::spmv`](SparseMatrix::spmv) →
    /// bit-identical to `s` separate `spmv` calls.
    fn spmv_powers_into(&self, x: &[f64], ys: &mut [f64], s: usize) {
        assert!(s >= 1, "spmv_powers s must be positive");
        assert_eq!(self.rows, self.cols, "matrix powers need a square operator");
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(ys.len(), self.rows * s, "ys length mismatch");
        let rows = self.rows;
        let row_len = &self.row_len;
        let col_idx = &self.col_idx;
        let values = &self.values;
        for p in 0..s {
            let (done, rest) = ys.split_at_mut(p * rows);
            let src: &[f64] = if p == 0 { x } else { &done[(p - 1) * rows..] };
            let dst = &mut rest[..rows];
            par_over_rows(dst, |i| {
                let mut acc = 0.0;
                for k in 0..row_len[i] as usize {
                    let slot = k * rows + i;
                    acc += values[slot] * src[col_idx[slot] as usize];
                }
                acc
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    #[test]
    fn from_csr_roundtrip_small() {
        let mut m = Coo::new(3, 3);
        for &(r, c, v) in &[
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            m.push(r, c, v);
        }
        let a = m.to_csr();
        let e = Ell::from_csr(&a);
        assert_eq!(e.width(), 2);
        assert_eq!(e.nnz(), 5);
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        e.spmv(&x, &mut y);
        assert_eq!(y, vec![4.0, 6.0, 19.0]);
    }

    #[test]
    fn empty_and_zero_row_matrices() {
        let a = Coo::new(3, 3).to_csr();
        let e = Ell::from_csr(&a);
        assert_eq!(e.width(), 0);
        assert_eq!(e.padding_ratio(), 1.0);
        let mut y = vec![1.0; 3];
        e.spmv(&[0.0; 3], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    // The 1/2/8-thread CSR bit-identity contract is covered for every
    // format (incl. ELL) by `formats_spmv_bit_identical_across_thread_counts`
    // in `tests/proptests.rs`.

    #[test]
    fn padding_ratio_reflects_irregularity() {
        // One dense row in an otherwise diagonal matrix.
        let n = 16;
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 1.0);
        }
        for c in 0..n {
            if c != 0 {
                m.push(0, c, 0.5);
            }
        }
        let e = Ell::from_csr(&m.to_csr());
        assert_eq!(e.width(), n);
        assert!(e.padding_ratio() > 4.0, "heavy padding expected");
    }
}
