//! Deterministic sparse-problem generators.
//!
//! These produce the synthetic analogues of the paper's SuiteSparse CFD
//! test set (see `DESIGN.md` §1 for the substitution argument). Three
//! ingredients cover all eleven matrices:
//!
//! 1. finite-difference stencils (7- and 27-point, with upwind convection
//!    for non-symmetry) — the discretization structure of the `atmosmod*`,
//!    `cfd2`, `parabolic_fem` family,
//! 2. a branching-tree transport operator — `lung2`'s airway network,
//! 3. diagonal similarity scaling `D A D⁻¹` with a chosen per-row
//!    power-of-two field `phi` — reproducing the wide value-exponent
//!    ranges of `PR02R`/`RM07R`/`HV15R`/`StocF-1465` (Fig. 10) while
//!    leaving the spectrum untouched. Whether `phi` is spatially
//!    correlated decides whether consecutive Krylov-vector entries share
//!    magnitude — exactly the property §VI-A credits for HV15R tolerating
//!    FRSZ2 while PR02R does not.

use crate::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Exact `2^k` as f64 (`k` within the normal range).
#[inline]
fn exp2i(k: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&k));
    f64::from_bits(((k + 1023) as u64) << 52)
}

/// Lexicographic index of grid point `(x, y, z)` — x fastest, matching
/// the memory order in which Krylov entries enter FRSZ2 blocks.
#[inline]
fn idx(x: usize, y: usize, z: usize, nx: usize, ny: usize) -> usize {
    (z * ny + y) * nx + x
}

/// 7-point convection–diffusion operator on an `nx × ny × nz` grid:
/// `-Δu + c·∇u + shift·u` with first-order upwinding. `conv = [cx,cy,cz]`
/// makes the operator non-symmetric (GMRES territory); `shift > 0` adds
/// diagonal dominance, which controls the unpreconditioned convergence
/// speed (the paper uses no preconditioner, §V-C).
pub fn conv_diff_3d(nx: usize, ny: usize, nz: usize, conv: [f64; 3], shift: f64) -> Csr {
    let n = nx * ny * nz;
    let mut m = Coo::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z, nx, ny);
                let mut diag = shift;
                // One (lo, hi) coefficient pair per dimension; upwinding
                // splits the convection onto the upstream side.
                let dims: [(usize, usize, usize, f64); 3] = [
                    (x, nx, 1, conv[0]),
                    (y, ny, nx, conv[1]),
                    (z, nz, nx * ny, conv[2]),
                ];
                for &(pos, extent, stride, c) in &dims {
                    let lo = -1.0 - c.max(0.0);
                    let hi = -1.0 + c.min(0.0);
                    diag += -lo - hi; // 2 + |c|
                    if pos > 0 {
                        m.push(i, i - stride, lo);
                    }
                    if pos + 1 < extent {
                        m.push(i, i + stride, hi);
                    }
                }
                m.push(i, i, diag);
            }
        }
    }
    m.to_csr()
}

/// 27-point operator (full 3×3×3 neighbourhood) for the high-nnz CFD
/// matrices (`cfd2`, `PR02R`, `RM07R`, `HV15R` have 25–140 nnz/row).
/// Off-diagonal weight decays with Chebyshev distance; `conv` skews the
/// x-forward couplings for non-symmetry.
pub fn stencil_27pt(nx: usize, ny: usize, nz: usize, conv: f64, shift: f64) -> Csr {
    let n = nx * ny * nz;
    let mut m = Coo::with_capacity(n, n, 27 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z, nx, ny);
                let mut offdiag_sum = 0.0;
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0
                                || yy < 0
                                || zz < 0
                                || xx >= nx as i64
                                || yy >= ny as i64
                                || zz >= nz as i64
                            {
                                continue;
                            }
                            let dist = dx.abs().max(dy.abs()).max(dz.abs());
                            let mut w = if dist == 1 { -0.5 } else { -0.125 };
                            // Upwind skew along +x.
                            if dx > 0 {
                                w *= 1.0 - conv;
                            } else if dx < 0 {
                                w *= 1.0 + conv;
                            }
                            let j = idx(xx as usize, yy as usize, zz as usize, nx, ny);
                            m.push(i, j, w);
                            offdiag_sum += w;
                        }
                    }
                }
                m.push(i, i, -offdiag_sum + shift);
            }
        }
    }
    m.to_csr()
}

/// Symmetric variable-coefficient diffusion `-(∇·κ∇)u + shift·u` with a
/// smooth κ field (the SPD `cfd2`/`parabolic_fem` analogues). Face
/// coefficients use the mean of the two cell values, preserving symmetry.
pub fn diffusion_3d<F>(nx: usize, ny: usize, nz: usize, kappa: F, shift: f64) -> Csr
where
    F: Fn(usize, usize, usize) -> f64,
{
    let n = nx * ny * nz;
    let mut m = Coo::with_capacity(n, n, 7 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z, nx, ny);
                let k0 = kappa(x, y, z);
                let mut diag = shift;
                let mut neighbour = |xx: usize, yy: usize, zz: usize| {
                    let kf = 0.5 * (k0 + kappa(xx, yy, zz));
                    m.push(i, idx(xx, yy, zz, nx, ny), -kf);
                    diag += kf;
                };
                if x > 0 {
                    neighbour(x - 1, y, z);
                }
                if x + 1 < nx {
                    neighbour(x + 1, y, z);
                }
                if y > 0 {
                    neighbour(x, y - 1, z);
                }
                if y + 1 < ny {
                    neighbour(x, y + 1, z);
                }
                if z > 0 {
                    neighbour(x, y, z - 1);
                }
                if z + 1 < nz {
                    neighbour(x, y, z + 1);
                }
                m.push(i, i, diag);
            }
        }
    }
    m.to_csr()
}

/// Transport on a binary tree with `levels` levels (`2^levels − 1`
/// nodes): the `lung2` airway analogue — ~3 nnz/row, non-symmetric
/// (directed flow from root to leaves of strength `flow`).
pub fn tree_transport(levels: u32, flow: f64, shift: f64) -> Csr {
    let n = (1usize << levels) - 1;
    let mut m = Coo::with_capacity(n, n, 4 * n);
    for i in 0..n {
        let mut diag = 2.0 + shift;
        if i > 0 {
            let parent = (i - 1) / 2;
            m.push(i, parent, -1.0 - flow); // inflow from parent
            diag += flow;
        }
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                m.push(i, c, -1.0 + flow); // weak reverse coupling
                diag += 1.0 - flow.min(1.0);
            }
        }
        m.push(i, i, diag);
    }
    m.to_csr()
}

/// Diagonal similarity scaling `A ← D A D⁻¹` with `D = diag(2^phi[i])`.
///
/// Exact powers of two keep the transformation lossless in f64 and leave
/// the spectrum identical; only the *representation* of the problem (and
/// hence the Krylov-vector magnitudes CB-GMRES must store) changes.
pub fn apply_similarity_scaling(a: &mut Csr, phi: &[i32]) {
    assert_eq!(phi.len(), a.rows());
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let row_ptr: Vec<usize> = a.row_ptr().to_vec();
    let col_idx: Vec<u32> = a.col_indices().to_vec();
    let values = a.values_mut();
    for i in 0..n {
        for k in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[k] as usize;
            values[k] *= exp2i(phi[i] - phi[j]);
        }
    }
}

/// Spatially-uncorrelated exponent field: uniform in `[-range, 0]`.
/// Adjacent entries differ by ~`range/3` binades on average — the PR02R
/// regime where FRSZ2 blocks span more binades than `l − 2` can hold.
pub fn phi_uncorrelated(n: usize, range: u32, seed: u64) -> Vec<i32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| -(rng.gen_range(0..=range) as i32)).collect()
}

/// The canonical PR02R-regime stagnation operator: the
/// [`conv_diff_3d`] stencil (velocity `[0.3, 0.2, 0.1]`, reaction 0.2)
/// similarity-scaled by [`phi_uncorrelated`] over `range` binades.
///
/// Krylov vectors of this operator spread neighbouring entries across
/// ~`range` binades, so block-exponent storage (FRSZ2) with fewer than
/// `range + 2` mantissa bits flushes most of each block and the solve
/// stagnates at the storage floor instead of restart-refining past it
/// (§VI-A / Fig. 9b). One definition, shared by the solver tests, the
/// bench harness's stagnation pair, and the `adaptive_basis` example,
/// so the "fixed `frsz2_16` must stagnate here" calibration lives in
/// exactly one place.
pub fn wide_range_conv_diff(nx: usize, ny: usize, nz: usize, range: u32, seed: u64) -> Csr {
    let mut a = conv_diff_3d(nx, ny, nz, [0.3, 0.2, 0.1], 0.2);
    let phi = phi_uncorrelated(a.rows(), range, seed);
    apply_similarity_scaling(&mut a, &phi);
    a
}

/// Partially-correlated exponent field: [`phi_uncorrelated`] draws
/// replicated over runs of `run` consecutive entries. With `run` below
/// the FRSZ2 block size a block straddles two or three scale plateaus,
/// so its exponent spread is the *difference of a few draws* rather
/// than the full `range` — the mixed regime between PR02R (every entry
/// independent) and HV15R (smooth fields): wide enough that one fixed
/// `l` cannot serve every block, narrow enough that per-block bit
/// lengths stay far below `range + 2` on most blocks.
pub fn phi_correlated_runs(n: usize, range: u32, run: usize, seed: u64) -> Vec<i32> {
    assert!(run > 0, "run length must be positive");
    let draws = phi_uncorrelated(n.div_ceil(run), range, seed);
    (0..n).map(|i| draws[i / run]).collect()
}

/// The mixed-regime stagnation operator: the [`conv_diff_3d`] stencil
/// (velocity `[0.3, 0.2, 0.1]`, reaction 0.2) similarity-scaled by
/// [`phi_correlated_runs`].
///
/// At `range = 24`, `run = 16` both fixed `frsz2_16` *and* fixed
/// `frsz2_21` stagnate above a `1e-10` target, while a per-block
/// adaptive store converges at a lower average rate than whole-basis
/// `frsz2_21` (22 bits/value): most blocks sit inside one or two scale
/// plateaus and take short codes, and only the plateau-straddling
/// minority pays for wide ones. As with [`wide_range_conv_diff`], one
/// definition shared by solver tests and the bench harness keeps the
/// calibration in exactly one place.
pub fn wide_range_conv_diff_runs(
    nx: usize,
    ny: usize,
    nz: usize,
    range: u32,
    run: usize,
    seed: u64,
) -> Csr {
    let mut a = conv_diff_3d(nx, ny, nz, [0.3, 0.2, 0.1], 0.2);
    let phi = phi_correlated_runs(a.rows(), range, run, seed);
    apply_similarity_scaling(&mut a, &phi);
    a
}

/// Exponent field depending only on the slowest (z) grid index: memory-
/// consecutive entries (x runs fastest) share their magnitude — the
/// HV15R regime where "the ordering of non-zero values may lead
/// neighboring Krylov vector values to have a similar magnitude" (§VI-A).
pub fn phi_smooth_z(nx: usize, ny: usize, nz: usize, range: u32) -> Vec<i32> {
    let mut phi = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        let v = if nz > 1 {
            -((range as usize * z / (nz - 1)) as i32)
        } else {
            0
        };
        phi.extend(std::iter::repeat_n(v, nx * ny));
    }
    phi
}

/// Smooth random exponent field: a few low-frequency 3-D cosine modes
/// with random phases, scaled to `[-range, 0]` (the StocF-1465 regime —
/// log-normal-like permeability with spatial correlation).
pub fn phi_smooth_field(nx: usize, ny: usize, nz: usize, range: u32, seed: u64) -> Vec<i32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let modes: Vec<([f64; 3], f64)> = (0..4)
        .map(|_| {
            (
                [
                    rng.gen_range(0.3..1.2),
                    rng.gen_range(0.3..1.2),
                    rng.gen_range(0.3..1.2),
                ],
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    let mut phi = Vec::with_capacity(nx * ny * nz);
    let tau = std::f64::consts::TAU;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let (fx, fy, fz) = (
                    x as f64 / nx as f64,
                    y as f64 / ny as f64,
                    z as f64 / nz as f64,
                );
                let mut s = 0.0;
                for &(k, ph) in &modes {
                    s += (tau * (k[0] * fx + k[1] * fy + k[2] * fz) + ph).cos();
                }
                // s in [-4, 4] -> [-range, 0]
                let v = -((s + 4.0) / 8.0 * range as f64).round() as i32;
                phi.push(v.clamp(-(range as i32), 0));
            }
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;

    #[test]
    fn wide_range_conv_diff_is_deterministic_and_spans_the_binades() {
        let a1 = wide_range_conv_diff(6, 6, 6, 24, 0x5202);
        let a2 = wide_range_conv_diff(6, 6, 6, 24, 0x5202);
        assert_eq!(a1.values(), a2.values(), "same seed, same operator");
        let (lo, hi) = a1
            .values()
            .iter()
            .filter(|v| **v != 0.0)
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &v| {
                (lo.min(v.abs()), hi.max(v.abs()))
            });
        assert!(
            hi / lo >= f64::powi(2.0, 24),
            "similarity scaling must actually spread the magnitudes ({lo:e}..{hi:e})"
        );
    }

    #[test]
    fn conv_diff_shapes_and_symmetry() {
        let a = conv_diff_3d(5, 4, 3, [0.0; 3], 0.0);
        assert_eq!(a.rows(), 60);
        // Pure diffusion is symmetric...
        assert!(a.asymmetry() < 1e-15);
        // ...convection breaks it.
        let b = conv_diff_3d(5, 4, 3, [0.4, 0.0, 0.0], 0.0);
        assert!(b.asymmetry() > 0.01);
        // Interior rows have 7 entries.
        let (cols, _) = a.row(idx(2, 2, 1, 5, 4));
        assert_eq!(cols.len(), 7);
    }

    #[test]
    fn conv_diff_interior_row_sums_equal_shift() {
        // With upwinding, interior rows sum to exactly the shift
        // (discrete conservation); boundary rows keep the missing
        // neighbour weight on the diagonal (Dirichlet), so their sums
        // exceed it.
        let a = conv_diff_3d(6, 5, 4, [0.3, -0.2, 0.1], 0.75);
        let ones = vec![1.0; a.rows()];
        let y = a.mul_vec(&ones);
        for x in 1..5 {
            for yy in 1..4 {
                for z in 1..3 {
                    let i = idx(x, yy, z, 6, 5);
                    assert!((y[i] - 0.75).abs() < 1e-12, "row {i}: {}", y[i]);
                }
            }
        }
        for &v in &y {
            assert!(v >= 0.75 - 1e-12, "boundary rows only add to the diagonal");
        }
    }

    #[test]
    fn stencil_27pt_row_counts() {
        let a = stencil_27pt(4, 4, 4, 0.2, 1.0);
        assert_eq!(a.rows(), 64);
        // Interior point has full 27-point neighbourhood.
        let (cols, _) = a.row(idx(1, 1, 1, 4, 4));
        assert_eq!(cols.len(), 27);
        // Row sums equal the shift (weights balance by construction).
        let y = a.mul_vec(&vec![1.0; 64]);
        for &v in &y {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!(a.asymmetry() > 0.01);
    }

    #[test]
    fn diffusion_is_symmetric_positive_definite_ish() {
        let a = diffusion_3d(5, 5, 5, |x, _, _| 1.0 + x as f64 * 0.3, 0.1);
        assert!(a.asymmetry() < 1e-15);
        // Weak diagonal dominance with positive diagonal => PD.
        let d = a.diagonal();
        assert!(d.iter().all(|&v| v > 0.0));
        let x: Vec<f64> = (0..125).map(|i| ((i as f64) * 0.77).sin()).collect();
        let y = a.mul_vec(&x);
        assert!(dense::dot(&x, &y) > 0.0, "xᵀAx must be positive");
    }

    #[test]
    fn tree_transport_structure() {
        let a = tree_transport(5, 0.5, 0.2);
        assert_eq!(a.rows(), 31);
        assert!(a.nnz() <= 4 * 31);
        assert!(a.asymmetry() > 0.01);
        // Root has no parent: row 0 has 3 entries (diag + 2 children).
        let (cols, _) = a.row(0);
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn similarity_scaling_preserves_eigen_action() {
        // D A D^-1 (D x) = D (A x): check through one SpMV.
        let mut a = conv_diff_3d(4, 4, 4, [0.2, 0.0, 0.0], 0.5);
        let orig = a.clone();
        let phi = phi_uncorrelated(64, 10, 42);
        apply_similarity_scaling(&mut a, &phi);
        let x: Vec<f64> = (0..64).map(|i| ((i as f64) * 0.31).cos()).collect();
        let dx: Vec<f64> = x.iter().zip(&phi).map(|(&v, &p)| v * exp2i(p)).collect();
        let lhs = a.mul_vec(&dx);
        let ax = orig.mul_vec(&x);
        let rhs: Vec<f64> = ax.iter().zip(&phi).map(|(&v, &p)| v * exp2i(p)).collect();
        for i in 0..64 {
            // Power-of-two scaling is exact: bitwise equality.
            assert_eq!(lhs[i].to_bits(), rhs[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn phi_fields_have_requested_range_and_structure() {
        let u = phi_uncorrelated(10_000, 35, 7);
        assert!(u.iter().all(|&p| (-35..=0).contains(&p)));
        assert!(u.iter().any(|&p| p < -30), "range should be exercised");

        let s = phi_smooth_z(8, 8, 10, 20);
        assert_eq!(s.len(), 640);
        // Constant within an xy-plane.
        assert!(s[0..64].iter().all(|&p| p == s[0]));
        assert_eq!(s[0], 0);
        assert_eq!(s[639], -20);

        let f = phi_smooth_field(16, 16, 16, 30, 3);
        assert!(f.iter().all(|&p| (-30..=0).contains(&p)));
        // Smoothness: x-neighbouring values within a grid row differ by
        // few binades (row wraps may jump more and are excluded).
        let max_step = f
            .chunks(16)
            .flat_map(|row| row.windows(2).map(|w| (w[0] - w[1]).abs()))
            .max()
            .unwrap();
        assert!(max_step <= 8, "smooth field jumps by {max_step}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a1 = phi_uncorrelated(100, 20, 5);
        let a2 = phi_uncorrelated(100, 20, 5);
        assert_eq!(a1, a2);
        let b1 = phi_smooth_field(8, 8, 8, 25, 9);
        let b2 = phi_smooth_field(8, 8, 8, 25, 9);
        assert_eq!(b1, b2);
    }
}
