//! Sparse linear-algebra substrate for the FRSZ2 / CB-GMRES reproduction.
//!
//! Provides everything the solver and the evaluation need below the Krylov
//! layer:
//!
//! * [`coo`]/[`csr`] — triplet assembly and compressed-sparse-row storage
//!   with rayon-parallel SpMV (the memory-bound kernel of GMRES step 3),
//! * [`matrix`] — the [`SparseMatrix`] trait the solver stack is generic
//!   over, with [`ell`] (padded ELLPACK) and [`sell`] (SELL-C-σ, the
//!   sliced format GPUs actually run SpMV from) as alternative storage
//!   formats whose SpMV is bit-identical to CSR,
//! * [`select`] — data-driven runtime format selection from row-length
//!   statistics,
//! * [`dense`] — deterministic parallel vector kernels (dot, norm2, axpy),
//! * [`io`] — MatrixMarket reading/writing so the real SuiteSparse
//!   matrices of Table I can be dropped in when available,
//! * [`gen`] — parameterized problem generators (convection–diffusion
//!   stencils, scaled wide-dynamic-range operators, tree transport),
//! * [`suite`] — the eleven named analogues of the paper's Table I test
//!   set, with the published sizes, non-zero counts and target relative
//!   residual norms,
//! * [`stats`] — value/exponent histograms (Figs. 2 and 10).
//!
//! All generators are deterministic: the same name and scale always
//! produce the same matrix, so solver histories are reproducible.

pub mod coo;
pub mod csr;
pub mod dense;
pub mod ell;
pub mod gen;
pub mod io;
pub mod matrix;
pub mod select;
pub mod sell;
pub mod stats;
pub mod suite;

pub use coo::Coo;
pub use csr::Csr;
pub use ell::Ell;
pub use matrix::SparseMatrix;
pub use select::{auto_format, FormatChoice};
pub use sell::SellCSigma;
pub use suite::{SuiteMatrix, TableOneEntry, TABLE_ONE};
