//! Sparse linear-algebra substrate for the FRSZ2 / CB-GMRES reproduction.
//!
//! Provides everything the solver and the evaluation need below the Krylov
//! layer:
//!
//! * [`coo`]/[`csr`] — triplet assembly and compressed-sparse-row storage
//!   with rayon-parallel SpMV (the memory-bound kernel of GMRES step 3),
//! * [`dense`] — deterministic parallel vector kernels (dot, norm2, axpy),
//! * [`io`] — MatrixMarket reading/writing so the real SuiteSparse
//!   matrices of Table I can be dropped in when available,
//! * [`gen`] — parameterized problem generators (convection–diffusion
//!   stencils, scaled wide-dynamic-range operators, tree transport),
//! * [`suite`] — the eleven named analogues of the paper's Table I test
//!   set, with the published sizes, non-zero counts and target relative
//!   residual norms,
//! * [`stats`] — value/exponent histograms (Figs. 2 and 10).
//!
//! All generators are deterministic: the same name and scale always
//! produce the same matrix, so solver histories are reproducible.

pub mod coo;
pub mod csr;
pub mod dense;
pub mod gen;
pub mod io;
pub mod stats;
pub mod suite;

pub use coo::Coo;
pub use csr::Csr;
pub use suite::{SuiteMatrix, TableOneEntry, TABLE_ONE};
