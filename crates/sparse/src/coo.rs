//! Coordinate (triplet) sparse matrix assembly.
//!
//! COO is the assembly format: generators and the MatrixMarket reader
//! push `(row, col, value)` triplets in any order, then convert to
//! [`crate::Csr`] for compute. Duplicate entries are summed on
//! conversion (the usual finite-element assembly convention).

/// Sparse matrix in coordinate form.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Empty matrix of the given shape.
    ///
    /// # Panics
    /// If a dimension exceeds `u32::MAX` (indices are stored as `u32` to
    /// halve index bandwidth, matching the paper's 32-bit index
    /// optimization (4) of §IV-C).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows <= u32::MAX as usize && cols <= u32::MAX as usize);
        Coo {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        let mut m = Coo::new(rows, cols);
        m.entries.reserve(nnz);
        m
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates not yet merged).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Add `value` at `(row, col)`; duplicates accumulate on conversion.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows, "row {row} out of bounds {}", self.rows);
        debug_assert!(col < self.cols, "col {col} out of bounds {}", self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    pub fn entries(&self) -> &[(u32, u32, f64)] {
        &self.entries
    }

    /// Sort triplets row-major and sum duplicates.
    pub fn compact(&mut self) {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut out: Vec<(u32, u32, f64)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            match out.last_mut() {
                Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += v,
                _ => out.push((r, c, v)),
            }
        }
        self.entries = out;
    }

    /// Convert to CSR, summing duplicates and dropping explicit zeros
    /// produced by cancellation.
    pub fn to_csr(mut self) -> crate::Csr {
        self.compact();
        self.entries.retain(|&(_, _, v)| v != 0.0);
        crate::Csr::from_sorted_coo(self.rows, self.cols, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_compact_merges_duplicates() {
        let mut m = Coo::new(3, 3);
        m.push(1, 1, 2.0);
        m.push(0, 2, 1.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, -1.0);
        m.compact();
        assert_eq!(m.entries(), &[(0, 2, 1.0), (1, 1, 5.0), (2, 0, -1.0)]);
    }

    #[test]
    fn cancellation_drops_entry_in_csr() {
        let mut m = Coo::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(0, 1, 4.0);
        m.push(0, 1, -4.0);
        m.push(1, 1, 1.0);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row(0), (&[0u32][..], &[1.0][..]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_bounds_push_panics_in_debug() {
        let mut m = Coo::new(2, 2);
        m.push(2, 0, 1.0);
    }
}
