//! SELL-C-σ (sliced ELL) sparse storage — the format family GPUs
//! actually run SpMV from (Ginkgo's SELL-P, Kreutzer et al.'s
//! SELL-C-σ).
//!
//! Rows are grouped into *slices* of `C` consecutive (permuted) rows;
//! each slice is padded only to its own maximum row length and stored
//! column-major within the slice, so entry `k` of slice-lane `r` sits
//! at `slice_ptr[s] + k*C + r`. A warp of `C` lanes therefore reads `C`
//! consecutive values per step — the coalescing of ELL — while padding
//! is paid per slice, not per matrix. Before slicing, rows are sorted
//! by descending length inside windows of `σ` rows: larger `σ` groups
//! similar-length rows into the same slice (less padding) at the cost
//! of a more scattered output permutation. `σ = 1` disables sorting,
//! `σ = rows` sorts globally.
//!
//! The permutation is pure *storage* bookkeeping: `spmv` writes `y` in
//! original row order and accumulates every row serially in CSR entry
//! order, so results stay bit-identical to [`crate::Csr::spmv`] at any
//! thread count.

use crate::matrix::{par_over_row_blocks, par_over_rows, SparseMatrix};
use crate::Csr;

/// Sparse matrix in SELL-C-σ format.
#[derive(Clone, Debug)]
pub struct SellCSigma {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Slice height `C`.
    c: usize,
    /// Sorting-window size `σ`.
    sigma: usize,
    /// Entry offset of each slice (`len = slices + 1`); slice `s` holds
    /// `slice_width[s] * c` entry slots.
    slice_ptr: Vec<usize>,
    /// Padded width (max row length) of each slice.
    slice_width: Vec<u32>,
    /// Stored entries of each *original* row.
    row_len: Vec<u32>,
    /// Storage position of each original row: `pos[i] = slice*C + lane`.
    row_pos: Vec<u32>,
    /// Original row stored at each position (`u32::MAX` for padding
    /// lanes of the trailing slice).
    perm: Vec<u32>,
    /// Column indices, slice-local column-major.
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SellCSigma {
    /// Convert from CSR with slice height `c` and sorting window
    /// `sigma`, preserving each row's entry order.
    ///
    /// # Panics
    /// If `c == 0` or `sigma == 0`, or if the matrix has more than
    /// `u32::MAX - 1` padded row slots.
    pub fn from_csr(a: &Csr, c: usize, sigma: usize) -> SellCSigma {
        assert!(c >= 1, "slice height C must be positive");
        assert!(sigma >= 1, "sorting window σ must be positive");
        let rows = a.rows();
        let row_len: Vec<u32> = a.row_lengths().collect();

        // σ-sort: descending row length inside each window, ties broken
        // by ascending row id — fully deterministic.
        let mut order: Vec<u32> = (0..rows as u32).collect();
        for window in order.chunks_mut(sigma) {
            window.sort_by_key(|&i| (std::cmp::Reverse(row_len[i as usize]), i));
        }

        let slices = rows.div_ceil(c);
        let padded = slices * c;
        assert!(padded < u32::MAX as usize, "matrix too large for SELL");
        let mut perm = vec![u32::MAX; padded];
        perm[..rows].copy_from_slice(&order);

        let mut row_pos = vec![0u32; rows];
        for (p, &i) in order.iter().enumerate() {
            row_pos[i as usize] = p as u32;
        }

        let mut slice_ptr = Vec::with_capacity(slices + 1);
        let mut slice_width = Vec::with_capacity(slices);
        let mut off = 0usize;
        slice_ptr.push(0);
        for s in 0..slices {
            let width = perm[s * c..(s + 1) * c]
                .iter()
                .filter(|&&i| i != u32::MAX)
                .map(|&i| row_len[i as usize])
                .max()
                .unwrap_or(0) as usize;
            slice_width.push(width as u32);
            off += width * c;
            slice_ptr.push(off);
        }

        let mut col_idx = vec![0u32; off];
        let mut values = vec![0.0f64; off];
        for s in 0..slices {
            let base = slice_ptr[s];
            for r in 0..c {
                let i = perm[s * c + r];
                if i == u32::MAX {
                    continue;
                }
                let (cols, vals) = a.row(i as usize);
                for (k, (&cc, &v)) in cols.iter().zip(vals).enumerate() {
                    col_idx[base + k * c + r] = cc;
                    values[base + k * c + r] = v;
                }
            }
        }

        SellCSigma {
            rows,
            cols: a.cols(),
            nnz: a.nnz(),
            c,
            sigma,
            slice_ptr,
            slice_width,
            row_len,
            row_pos,
            perm,
            col_idx,
            values,
        }
    }

    /// Slice height `C`.
    pub fn slice_height(&self) -> usize {
        self.c
    }

    /// Sorting window `σ`.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slice_width.len()
    }

    /// Entry offsets of the slices (`len = slices + 1`).
    pub fn slice_ptr(&self) -> &[usize] {
        &self.slice_ptr
    }

    /// Padded width of each slice.
    pub fn slice_widths(&self) -> &[u32] {
        &self.slice_width
    }

    /// Original row stored at each position (`u32::MAX` = padding lane).
    pub fn permutation(&self) -> &[u32] {
        &self.perm
    }

    /// Stored entries of each original row.
    pub fn row_lengths(&self) -> &[u32] {
        &self.row_len
    }

    /// Slice-local column-major column indices.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_idx
    }

    /// Slice-local column-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Stored slots (incl. per-slice padding) over actual non-zeros;
    /// 1.0 means zero padding. Returns 1.0 for empty matrices.
    pub fn padding_ratio(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        self.values.len() as f64 / self.nnz as f64
    }
}

impl SparseMatrix for SellCSigma {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn nnz(&self) -> usize {
        self.nnz
    }

    fn format_name(&self) -> &'static str {
        "sell-c-sigma"
    }

    fn storage_bytes(&self) -> usize {
        self.values.len() * 8
            + self.col_idx.len() * 4
            + self.slice_ptr.len() * 8
            + self.slice_width.len() * 4
            + self.row_len.len() * 4
            + self.row_pos.len() * 4
            + self.perm.len() * 4
    }

    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(u32, f64)) {
        let pos = self.row_pos[i] as usize;
        let base = self.slice_ptr[pos / self.c] + pos % self.c;
        for k in 0..self.row_len[i] as usize {
            let s = base + k * self.c;
            f(self.col_idx[s], self.values[s]);
        }
    }

    /// `y := A x`: through the shared row-parallel driver in original
    /// row order; each row accumulates serially in CSR entry order →
    /// bit-identical to `Csr::spmv`.
    fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        let c = self.c;
        let slice_ptr = &self.slice_ptr;
        let row_len = &self.row_len;
        let row_pos = &self.row_pos;
        let col_idx = &self.col_idx;
        let values = &self.values;
        par_over_rows(y, |i| {
            let pos = row_pos[i] as usize;
            let base = slice_ptr[pos / c] + pos % c;
            let mut acc = 0.0;
            for k in 0..row_len[i] as usize {
                let s = base + k * c;
                acc += values[s] * x[col_idx[s] as usize];
            }
            acc
        });
    }

    /// `Y := A X` fused over `width` interleaved right-hand sides. The
    /// σ-permutation stays pure storage bookkeeping: output rows are
    /// written in original order, each `(row, rhs)` accumulating
    /// serially in CSR entry order over the same chunk geometry as
    /// `spmv` → bit-identical to `width` separate [`Csr::spmv`] calls
    /// at any thread count.
    fn spmm_into(&self, x: &[f64], y: &mut [f64], width: usize) {
        assert!(width >= 1, "spmm width must be positive");
        assert_eq!(x.len(), self.cols * width, "x length mismatch");
        assert_eq!(y.len(), self.rows * width, "y length mismatch");
        let c = self.c;
        let slice_ptr = &self.slice_ptr;
        let row_len = &self.row_len;
        let row_pos = &self.row_pos;
        let col_idx = &self.col_idx;
        let values = &self.values;
        par_over_row_blocks(y, width, |i, out| {
            let pos = row_pos[i] as usize;
            let base = slice_ptr[pos / c] + pos % c;
            out.fill(0.0);
            for k in 0..row_len[i] as usize {
                let s = base + k * c;
                let v = values[s];
                let xs = &x[col_idx[s] as usize * width..][..width];
                for (acc, xv) in out.iter_mut().zip(xs) {
                    *acc += v * xv;
                }
            }
        });
    }

    /// Matrix-powers panel `[Ax, A²x, …, Aˢx]` with the slice
    /// descriptors hoisted out of the power loop; output rows in
    /// original order, same chunk geometry and accumulation order as
    /// `spmv` → bit-identical to `s` separate [`Csr::spmv`] calls.
    fn spmv_powers_into(&self, x: &[f64], ys: &mut [f64], s: usize) {
        assert!(s >= 1, "spmv_powers s must be positive");
        assert_eq!(self.rows, self.cols, "matrix powers need a square operator");
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(ys.len(), self.rows * s, "ys length mismatch");
        let c = self.c;
        let slice_ptr = &self.slice_ptr;
        let row_len = &self.row_len;
        let row_pos = &self.row_pos;
        let col_idx = &self.col_idx;
        let values = &self.values;
        let n = self.rows;
        for p in 0..s {
            let (done, rest) = ys.split_at_mut(p * n);
            let src: &[f64] = if p == 0 { x } else { &done[(p - 1) * n..] };
            let dst = &mut rest[..n];
            par_over_rows(dst, |i| {
                let pos = row_pos[i] as usize;
                let base = slice_ptr[pos / c] + pos % c;
                let mut acc = 0.0;
                for k in 0..row_len[i] as usize {
                    let slot = base + k * c;
                    acc += values[slot] * src[col_idx[slot] as usize];
                }
                acc
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    fn irregular(n: usize) -> Csr {
        let mut m = Coo::new(n, n);
        for i in 0..n {
            m.push(i, i, 3.0 + (i % 5) as f64 * 0.5);
            // Row length varies with i: 1..=4 extra entries.
            for k in 0..(i % 4) {
                let c = (i + 3 * k + 1) % n;
                if c != i {
                    m.push(i, c, -0.25 - (k as f64) * 0.125);
                }
            }
        }
        m.to_csr()
    }

    #[test]
    fn matches_csr_on_irregular_matrix() {
        let a = irregular(97);
        for (c, sigma) in [(1, 1), (4, 1), (4, 16), (32, 97), (8, 1000)] {
            let s = SellCSigma::from_csr(&a, c, sigma);
            assert_eq!(s.nnz(), a.nnz());
            let x: Vec<f64> = (0..97).map(|i| ((i as f64) * 0.7).cos()).collect();
            let mut y = vec![0.0; 97];
            s.spmv(&x, &mut y);
            let expect = a.mul_vec(&x);
            for i in 0..97 {
                assert_eq!(
                    y[i].to_bits(),
                    expect[i].to_bits(),
                    "C={c} σ={sigma} row {i}"
                );
            }
        }
    }

    #[test]
    fn sigma_sorting_reduces_padding() {
        let a = irregular(256);
        let unsorted = SellCSigma::from_csr(&a, 32, 1);
        let sorted = SellCSigma::from_csr(&a, 32, 256);
        assert!(
            sorted.padding_ratio() <= unsorted.padding_ratio(),
            "σ-sorting must not increase padding: {} vs {}",
            sorted.padding_ratio(),
            unsorted.padding_ratio()
        );
        assert!(sorted.padding_ratio() < 1.3, "sorted slices nearly dense");
    }

    #[test]
    fn permutation_is_a_bijection_on_rows() {
        let a = irregular(70);
        let s = SellCSigma::from_csr(&a, 32, 70);
        let mut seen = [false; 70];
        for &p in s.permutation() {
            if p != u32::MAX {
                assert!(!seen[p as usize], "row {p} stored twice");
                seen[p as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every row stored exactly once");
        // row_pos is the inverse of perm.
        for i in 0..70 {
            assert_eq!(s.permutation()[s.row_pos[i] as usize], i as u32);
        }
    }

    #[test]
    fn trailing_partial_slice_and_empty_matrix() {
        let a = irregular(37); // 37 rows, C=8 -> 5 slices, last has 5 rows
        let s = SellCSigma::from_csr(&a, 8, 16);
        assert_eq!(s.slice_count(), 5);
        let x = vec![1.0; 37];
        let mut y = vec![0.0; 37];
        s.spmv(&x, &mut y);
        assert_eq!(y, a.mul_vec(&x));

        let empty = SellCSigma::from_csr(&Coo::new(0, 0).to_csr(), 32, 256);
        assert_eq!(empty.slice_count(), 0);
        assert_eq!(empty.padding_ratio(), 1.0);
    }

    // The 1/2/8-thread CSR bit-identity contract is covered for every
    // format (incl. SELL) by `formats_spmv_bit_identical_across_thread_counts`
    // in `tests/proptests.rs`.
}
