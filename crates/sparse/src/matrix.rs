//! The format-agnostic sparse-matrix interface.
//!
//! CB-GMRES is memory-bandwidth-bound and its dominant kernel is the
//! SpMV of step 3, so the *storage format* of `A` — not just the basis
//! compression — decides how close the solver runs to the bandwidth
//! roof. The paper's production setting (Ginkgo) never executes SpMV
//! from CSR on the GPU; it uses sliced-ELL variants whose slices give
//! every warp a coalesced access pattern. [`SparseMatrix`] is the seam
//! that lets the whole stack (solver, preconditioners, simulator,
//! benches) run on any of [`crate::Csr`], [`crate::Ell`], or
//! [`crate::SellCSigma`].
//!
//! # The bit-identity contract
//!
//! Every implementation MUST accumulate each output row **serially, in
//! the row's CSR entry order** (ascending column within a row), with one
//! worker owning each row. Formats may permute *storage* (σ-sorting,
//! slice padding, column-major layout) but never the *accumulation
//! order*. Consequence: `spmv` results are bit-identical across every
//! format and every thread count, so residual histories of a solve do
//! not depend on the matrix format backing it — enforced by property
//! tests in `crates/sparse/tests/proptests.rs` and by the `bench_json`
//! cross-format fingerprint check.

/// Rows per parallel work item, shared by all format implementations:
/// large enough to amortize scheduling (≥ ~7k FLOPs per item on the
/// suite's stencils), small enough to balance irregular row lengths.
/// Task boundaries derive from this constant and the row count only —
/// never the thread count — so the pool's chunk-dealing stays
/// deterministic.
pub(crate) const ROW_CHUNK: usize = 1024;

/// The one row-parallel driver every format's `spmv` runs through:
/// `y[i] = kernel(i)` over fixed [`ROW_CHUNK`] chunks, with a serial
/// fast path when a single work item cannot be split. The chunk
/// geometry IS the determinism contract — keeping it in one place
/// means no format can drift from it.
pub(crate) fn par_over_rows(y: &mut [f64], kernel: impl Fn(usize) -> f64 + Sync) {
    use rayon::prelude::*;
    if y.len() <= ROW_CHUNK {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = kernel(i);
        }
        return;
    }
    y.par_chunks_mut(ROW_CHUNK)
        .enumerate()
        .for_each(|(chunk, out)| {
            let base = chunk * ROW_CHUNK;
            for (k, yi) in out.iter_mut().enumerate() {
                *yi = kernel(base + k);
            }
        });
}

/// Multi-vector sibling of [`par_over_rows`]: `y` is row-major
/// interleaved (`width` values per row), and `kernel(i, out)` fills the
/// `width`-slot output row `i`. Work items cover the SAME
/// [`ROW_CHUNK`]-row spans as the vector driver — the boundaries derive
/// from `ROW_CHUNK` and the row count only, never the thread count or
/// the block width — so per-row accumulation stays serial and `spmm`
/// results are bit-identical across formats and thread counts.
pub(crate) fn par_over_row_blocks(
    y: &mut [f64],
    width: usize,
    kernel: impl Fn(usize, &mut [f64]) + Sync,
) {
    use rayon::prelude::*;
    if y.len() <= ROW_CHUNK * width {
        for (i, out) in y.chunks_exact_mut(width).enumerate() {
            kernel(i, out);
        }
        return;
    }
    y.par_chunks_mut(ROW_CHUNK * width)
        .enumerate()
        .for_each(|(chunk, block)| {
            let base = chunk * ROW_CHUNK;
            for (k, out) in block.chunks_exact_mut(width).enumerate() {
                kernel(base + k, out);
            }
        });
}

/// A sparse matrix usable as the operator of the solver stack.
///
/// Object-safe: `&dyn SparseMatrix` works wherever `&impl SparseMatrix`
/// does (the runtime auto-selection in [`crate::select`] relies on it).
pub trait SparseMatrix: Send + Sync {
    /// Number of rows.
    fn rows(&self) -> usize;

    /// Number of columns.
    fn cols(&self) -> usize;

    /// Stored non-zeros (excluding any format padding).
    fn nnz(&self) -> usize;

    /// Short format label for reports (`"csr"`, `"ell"`, `"sell-c-sigma"`).
    fn format_name(&self) -> &'static str;

    /// Bytes held by the format's arrays, *including* padding — the
    /// quantity the format trade-off is about.
    fn storage_bytes(&self) -> usize;

    /// Visit the stored entries of row `i` as `(col, value)` in the
    /// row's accumulation order (ascending column).
    fn for_each_in_row(&self, i: usize, f: &mut dyn FnMut(u32, f64));

    /// `y := A x` — parallel, deterministic, bit-identical to every
    /// other format at any thread count (see module docs).
    fn spmv(&self, x: &[f64], y: &mut [f64]);

    /// `Y := A X` for `width` right-hand sides at once — the block
    /// solver's expansion kernel. `x` and `y` are **row-major
    /// interleaved**: RHS `j`'s value at row `i` sits at `i*width + j`,
    /// so one sweep of the matrix touches all `width` outputs and the
    /// matrix traffic is amortized over the block (the point of block
    /// CB-GMRES).
    ///
    /// The bit-identity contract extends the SpMV one: each
    /// `(row, rhs)` pair accumulates serially in the row's CSR entry
    /// order, and tile boundaries are the same `ROW_CHUNK` row spans
    /// `spmv` uses. Consequence: `spmm_into` at any width, on any
    /// format, at any thread count, reproduces `width` independent
    /// `spmv` calls bit for bit — enforced by the property tests in
    /// `crates/sparse/tests/proptests.rs`.
    ///
    /// The default tiles over [`SparseMatrix::for_each_in_row`];
    /// [`crate::Csr`], [`crate::Ell`], and [`crate::SellCSigma`]
    /// override it with fused kernels that read each stored entry once.
    ///
    /// # Panics
    /// If `width == 0`, `x.len() != cols*width`, or
    /// `y.len() != rows*width`.
    fn spmm_into(&self, x: &[f64], y: &mut [f64], width: usize) {
        assert!(width >= 1, "spmm width must be positive");
        assert_eq!(x.len(), self.cols() * width, "x length mismatch");
        assert_eq!(y.len(), self.rows() * width, "y length mismatch");
        par_over_row_blocks(y, width, |i, out| {
            out.fill(0.0);
            self.for_each_in_row(i, &mut |c, v| {
                let xs = &x[c as usize * width..(c as usize + 1) * width];
                for (acc, xv) in out.iter_mut().zip(xs) {
                    *acc += v * xv;
                }
            });
        });
    }

    /// `ys[(p-1)·rows..][..rows] := Aᵖ x` for `p in 1..=s` — the
    /// matrix-powers expansion of s-step GMRES. One call produces the
    /// whole monomial panel `[Ax, A²x, …, Aˢx]` without returning to
    /// the caller between applications, so the format's row structure
    /// (pointers, slice descriptors) is walked from hot state `s`
    /// times back to back.
    ///
    /// The bit-identity contract is inherited from `spmv`: every power
    /// step `p` applies the operator to the finished power `p−1`
    /// through the same `ROW_CHUNK` chunk geometry with serial per-row
    /// accumulation in CSR entry order. Because each power consumes
    /// the *complete* previous power (a global dependency), steps are
    /// not tiled *across* powers — the fusion is in the repeated
    /// apply, not in ghost-region pipelining — and the result is
    /// bit-identical to `s` separate [`SparseMatrix::spmv`] calls on
    /// any format at any thread count. Enforced by the property tests
    /// in `crates/sparse/tests/proptests.rs`.
    ///
    /// The default tiles over [`SparseMatrix::for_each_in_row`];
    /// [`crate::Csr`], [`crate::Ell`], and [`crate::SellCSigma`]
    /// override it with kernels that hoist their array borrows out of
    /// the power loop.
    ///
    /// # Panics
    /// If `s == 0`, the matrix is not square, `x.len() != cols`, or
    /// `ys.len() != rows*s`.
    fn spmv_powers_into(&self, x: &[f64], ys: &mut [f64], s: usize) {
        assert!(s >= 1, "spmv_powers s must be positive");
        assert_eq!(
            self.rows(),
            self.cols(),
            "matrix powers need a square operator"
        );
        assert_eq!(x.len(), self.cols(), "x length mismatch");
        assert_eq!(ys.len(), self.rows() * s, "ys length mismatch");
        let n = self.rows();
        for p in 0..s {
            let (done, rest) = ys.split_at_mut(p * n);
            let src: &[f64] = if p == 0 { x } else { &done[(p - 1) * n..] };
            let dst = &mut rest[..n];
            par_over_rows(dst, |i| {
                let mut acc = 0.0;
                self.for_each_in_row(i, &mut |c, v| acc += v * src[c as usize]);
                acc
            });
        }
    }

    /// Main-diagonal entries (zero where the diagonal is absent).
    fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows().min(self.cols())];
        for (i, di) in d.iter_mut().enumerate() {
            self.for_each_in_row(i, &mut |c, v| {
                if c as usize == i {
                    *di = v;
                }
            });
        }
        d
    }

    /// Bytes streamed by one SpMV (format arrays + input/output
    /// vectors) — drives the performance model.
    fn spmv_bytes(&self) -> usize {
        self.storage_bytes() + self.cols() * 8 + self.rows() * 8
    }
}

#[cfg(test)]
mod tests {
    use crate::{Coo, Ell, SellCSigma, SparseMatrix};

    fn example() -> crate::Csr {
        let mut m = Coo::new(4, 4);
        m.push(0, 0, 2.0);
        m.push(0, 2, -1.0);
        m.push(1, 1, 3.0);
        m.push(2, 0, 4.0);
        m.push(2, 2, 5.0);
        m.push(2, 3, 0.5);
        m.push(3, 3, -2.0);
        m.to_csr()
    }

    #[test]
    fn trait_is_object_safe_and_consistent_across_formats() {
        let a = example();
        let formats: Vec<Box<dyn SparseMatrix>> = vec![
            Box::new(a.clone()),
            Box::new(Ell::from_csr(&a)),
            Box::new(SellCSigma::from_csr(&a, 2, 4)),
        ];
        let x = vec![1.0, -2.0, 0.5, 4.0];
        let reference = a.mul_vec(&x);
        for m in &formats {
            assert_eq!(m.rows(), 4);
            assert_eq!(m.cols(), 4);
            assert_eq!(m.nnz(), 7);
            assert_eq!(
                m.diagonal(),
                vec![2.0, 3.0, 5.0, -2.0],
                "{}",
                m.format_name()
            );
            let mut y = vec![0.0; 4];
            m.spmv(&x, &mut y);
            for i in 0..4 {
                assert_eq!(
                    y[i].to_bits(),
                    reference[i].to_bits(),
                    "{} row {i}",
                    m.format_name()
                );
            }
            assert!(m.storage_bytes() > 0);
            assert!(m.spmv_bytes() > m.storage_bytes());
        }
    }

    #[test]
    fn row_visit_matches_csr_rows() {
        let a = example();
        let ell = Ell::from_csr(&a);
        let sell = SellCSigma::from_csr(&a, 2, 4);
        for i in 0..a.rows() {
            let (cols, vals) = a.row(i);
            for m in [&ell as &dyn SparseMatrix, &sell] {
                let mut got = Vec::new();
                m.for_each_in_row(i, &mut |c, v| got.push((c, v)));
                let expect: Vec<(u32, f64)> =
                    cols.iter().copied().zip(vals.iter().copied()).collect();
                assert_eq!(got, expect, "{} row {i}", m.format_name());
            }
        }
    }
}
