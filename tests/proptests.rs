//! Workspace-level property tests: invariants that span crates.

use frsz2_repro::frsz2::{Frsz2Config, Frsz2Store, Frsz2Vector};
use frsz2_repro::gpusim;
use frsz2_repro::lossy::registry;
use frsz2_repro::numfmt::ColumnStorage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The simulated GPU decompression kernel and the CPU codec agree
    /// bit for bit for every supported l on random Krylov-like data.
    #[test]
    fn gpu_sim_equals_cpu_codec(
        l in prop_oneof![Just(16u32), Just(21), Just(32)],
        blocks in 1usize..8,
        seed in 0u64..1000,
    ) {
        let n = blocks * 32;
        let data: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::compress(cfg, &data);
        let (sim, _) = gpusim::kernels::frsz2_decompress_sim(cfg, v.words(), v.exponents(), n);
        let cpu = v.decompress();
        for i in 0..n {
            prop_assert_eq!(sim[i].to_bits(), cpu[i].to_bits(), "row {}", i);
        }
    }

    /// Simulated compression produces the same stream the CPU does.
    #[test]
    fn gpu_sim_compression_equals_cpu(
        l in prop_oneof![Just(16u32), Just(21), Just(32)],
        data in prop::collection::vec(-2.0f64..2.0, 32..129),
    ) {
        let n = (data.len() / 32) * 32;
        let data = &data[..n];
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::compress(cfg, data);
        let (words, exps, _) = gpusim::kernels::frsz2_compress_sim(cfg, data);
        prop_assert_eq!(&words, v.words());
        prop_assert_eq!(&exps, v.exponents());
    }

    /// Every registered codec round-trips arbitrary finite data within
    /// its advertised bound class (absolute bounds checked directly).
    #[test]
    fn registry_codecs_respect_absolute_bounds(
        data in prop::collection::vec(-1.0f64..1.0, 1..300),
    ) {
        for (name, bound) in [("sz3_06", 1e-6), ("sz3_07", 1e-7), ("sz3_08", 1e-8),
                              ("zfp_06", 1.4e-6), ("zfp_10", 4.0e-10)] {
            let c = registry::by_name(name).unwrap();
            let out = c.decompress(&c.compress(&data), data.len());
            for (i, (a, b)) in data.iter().zip(&out).enumerate() {
                prop_assert!((a - b).abs() <= bound, "{}: i={} err {}", name, i, (a - b).abs());
            }
        }
    }

    /// Writing a column through the FRSZ2 store and through the plain
    /// codec is the same operation.
    #[test]
    fn store_and_codec_are_consistent(
        data in prop::collection::vec(-10.0f64..10.0, 1..200),
        l in prop_oneof![Just(16u32), Just(21), Just(32), Just(48)],
    ) {
        let cfg = Frsz2Config::new(32, l);
        let mut store = Frsz2Store::with_config(cfg, data.len(), 1);
        store.write_column(0, &data);
        let v = Frsz2Vector::compress(cfg, &data);
        for i in 0..data.len() {
            prop_assert_eq!(store.load(i, 0).to_bits(), v.get(i).to_bits(), "i = {}", i);
        }
    }
}
