//! Workspace-level property tests: invariants that span crates.

use frsz2_repro::frsz2::{Frsz2Config, Frsz2Store, Frsz2Vector};
use frsz2_repro::gpusim;
use frsz2_repro::krylov::{
    adaptive_gmres, basis_format, AdaptiveOptions, GmresOptions, Identity, SolveResult,
};
use frsz2_repro::lossy::registry;
use frsz2_repro::numfmt::ColumnStorage;
use frsz2_repro::spla::gen;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The simulated GPU decompression kernel and the CPU codec agree
    /// bit for bit for every supported l on random Krylov-like data.
    #[test]
    fn gpu_sim_equals_cpu_codec(
        l in prop_oneof![Just(16u32), Just(21), Just(32)],
        blocks in 1usize..8,
        seed in 0u64..1000,
    ) {
        let n = blocks * 32;
        let data: Vec<f64> = (0..n)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::compress(cfg, &data);
        let (sim, _) = gpusim::kernels::frsz2_decompress_sim(cfg, v.words(), v.exponents(), n);
        let cpu = v.decompress();
        for i in 0..n {
            prop_assert_eq!(sim[i].to_bits(), cpu[i].to_bits(), "row {}", i);
        }
    }

    /// Simulated compression produces the same stream the CPU does.
    #[test]
    fn gpu_sim_compression_equals_cpu(
        l in prop_oneof![Just(16u32), Just(21), Just(32)],
        data in prop::collection::vec(-2.0f64..2.0, 32..129),
    ) {
        let n = (data.len() / 32) * 32;
        let data = &data[..n];
        let cfg = Frsz2Config::new(32, l);
        let v = Frsz2Vector::compress(cfg, data);
        let (words, exps, _) = gpusim::kernels::frsz2_compress_sim(cfg, data);
        prop_assert_eq!(&words, v.words());
        prop_assert_eq!(&exps, v.exponents());
    }

    /// Every registered codec round-trips arbitrary finite data within
    /// its advertised bound class (absolute bounds checked directly).
    #[test]
    fn registry_codecs_respect_absolute_bounds(
        data in prop::collection::vec(-1.0f64..1.0, 1..300),
    ) {
        for (name, bound) in [("sz3_06", 1e-6), ("sz3_07", 1e-7), ("sz3_08", 1e-8),
                              ("zfp_06", 1.4e-6), ("zfp_10", 4.0e-10)] {
            let c = registry::by_name(name).unwrap();
            let out = c.decompress(&c.compress(&data), data.len());
            for (i, (a, b)) in data.iter().zip(&out).enumerate() {
                prop_assert!((a - b).abs() <= bound, "{}: i={} err {}", name, i, (a - b).abs());
            }
        }
    }

    /// Writing a column through the FRSZ2 store and through the plain
    /// codec is the same operation.
    #[test]
    fn store_and_codec_are_consistent(
        data in prop::collection::vec(-10.0f64..10.0, 1..200),
        l in prop_oneof![Just(16u32), Just(21), Just(32), Just(48)],
    ) {
        let cfg = Frsz2Config::new(32, l);
        let mut store = Frsz2Store::with_config(cfg, data.len(), 1);
        store.write_column(0, &data);
        let v = Frsz2Vector::compress(cfg, &data);
        for i in 0..data.len() {
            prop_assert_eq!(store.load(i, 0).to_bits(), v.get(i).to_bits(), "i = {}", i);
        }
    }
}

/// Run `solve` under a pool of exactly `threads` threads.
fn under_pool(threads: usize, solve: impl Fn() -> SolveResult) -> SolveResult {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(solve)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The honest-convergence contract, for EVERY registered basis
    /// format at 1/2/8 threads: `converged == true` implies the final
    /// explicit relative residual actually meets the target (never the
    /// implicit Givens estimate alone), and each format's solve is
    /// bit-identical across thread counts (the fingerprint discipline
    /// extended to the whole registry).
    #[test]
    fn every_registered_format_converges_honestly_at_any_thread_count(
        seed in 0u64..1000,
    ) {
        let a = gen::conv_diff_3d(5, 5, 5, [0.3, 0.2, 0.1], 0.25);
        let b: Vec<f64> = (0..a.rows())
            .map(|i| (((i as u64).wrapping_mul(seed + 7) % 997) as f64 / 499.0) - 1.0)
            .collect();
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            target_rrn: 1e-6,
            max_iters: 150,
            restart: 30,
            ..GmresOptions::default()
        };
        for name in basis_format::names() {
            let fmt = basis_format::by_name(&name).unwrap();
            let solve = || basis_format::gmres_dyn(&a, &b, &x0, &opts, &Identity, fmt.as_ref());
            let base = under_pool(1, solve);
            if base.stats.converged {
                prop_assert!(
                    base.stats.final_rrn <= opts.target_rrn,
                    "{}: converged but explicit rrn {:.2e} > target",
                    name, base.stats.final_rrn
                );
                // And the reported residual is the explicit one of the
                // returned x, recomputed independently.
                let mut ax = vec![0.0; a.rows()];
                a.spmv(&base.x, &mut ax);
                let mut res = vec![0.0; a.rows()];
                frsz2_repro::spla::dense::sub(&b, &ax, &mut res);
                let explicit = frsz2_repro::spla::dense::norm2(&res)
                    / frsz2_repro::spla::dense::norm2(&b);
                prop_assert_eq!(
                    explicit.to_bits(), base.stats.final_rrn.to_bits(),
                    "{}: final_rrn is not the explicit residual", &name
                );
            }
            for threads in [2usize, 8] {
                let r = under_pool(threads, solve);
                prop_assert_eq!(
                    r.stats.iterations, base.stats.iterations,
                    "{} at {} threads", &name, threads
                );
                prop_assert_eq!(r.history.len(), base.history.len(), "{}", &name);
                for (p, q) in r.history.iter().zip(&base.history) {
                    prop_assert_eq!(
                        p.rrn.to_bits(), q.rrn.to_bits(),
                        "{} history at {} threads", &name, threads
                    );
                }
                for (u, v) in r.x.iter().zip(&base.x) {
                    prop_assert_eq!(
                        u.to_bits(), v.to_bits(),
                        "{} solution at {} threads", &name, threads
                    );
                }
            }
        }
    }

    /// Adaptive solves — escalation schedule included — are
    /// bit-identical across thread counts.
    #[test]
    fn adaptive_solver_is_bit_identical_across_thread_counts(
        range in prop_oneof![Just(16u32), Just(24)],
    ) {
        let a = gen::wide_range_conv_diff(6, 6, 6, range, 0x5202);
        let (_, b) = frsz2_repro::spla::dense::manufactured_rhs(&a);
        let x0 = vec![0.0; a.rows()];
        let opts = AdaptiveOptions {
            gmres: GmresOptions {
                target_rrn: 1e-10,
                max_iters: 900,
                restart: 30,
                ..GmresOptions::default()
            },
            ..AdaptiveOptions::default()
        };
        let solve = || adaptive_gmres(&a, &b, &x0, &opts, &Identity);
        let base = under_pool(1, solve);
        prop_assert!(base.stats.converged || base.stats.iterations >= 900);
        for threads in [2usize, 8] {
            let r = under_pool(threads, solve);
            prop_assert_eq!(
                &r.stats.format_trajectory, &base.stats.format_trajectory,
                "escalation schedule diverged at {} threads", threads
            );
            prop_assert_eq!(r.stats.escalations, base.stats.escalations);
            prop_assert_eq!(r.history.len(), base.history.len());
            for (p, q) in r.history.iter().zip(&base.history) {
                prop_assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
            }
            for (u, v) in r.x.iter().zip(&base.x) {
                prop_assert_eq!(u.to_bits(), v.to_bits());
            }
        }
    }
}
