//! Cross-crate integration tests: the full pipeline from problem
//! generation through compressed-basis solves, across every storage
//! format, on small instances.

use frsz2_repro::frsz2::{Frsz2Config, Frsz2Store, Frsz2Vector};
use frsz2_repro::gpusim;
use frsz2_repro::krylov::{
    adaptive_gmres, block_gmres_with, gmres, gmres_with, AdaptiveOptions, GmresOptions, Identity,
    Jacobi, ESCALATION_LADDER,
};
use frsz2_repro::lossy::{registry, Compressor, RoundTripStore};
use frsz2_repro::numfmt::{ColumnStorage, DenseStore, BF16, F16};
use frsz2_repro::spla::dense::{manufactured_rhs, norm2};
use frsz2_repro::spla::{gen, suite};

fn small_opts(target: f64) -> GmresOptions {
    GmresOptions {
        target_rrn: target,
        max_iters: 3000,
        ..GmresOptions::default()
    }
}

#[test]
fn every_storage_format_solves_the_same_system() {
    let a = gen::conv_diff_3d(10, 10, 10, [0.4, 0.2, 0.1], 0.2);
    let (x_true, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-10);

    let check = |label: &str, r: frsz2_repro::krylov::SolveResult| {
        assert!(
            r.stats.converged,
            "{label} did not converge: {}",
            r.stats.final_rrn
        );
        let err: f64 =
            r.x.iter()
                .zip(&x_true)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
        assert!(err < 1e-6, "{label} solution error {err}");
        r.stats.iterations
    };

    let base = check(
        "float64",
        gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &opts, &Identity),
    );
    for (label, iters) in [
        (
            "float32",
            check(
                "float32",
                gmres::<DenseStore<f32>, _, _>(&a, &b, &x0, &opts, &Identity),
            ),
        ),
        (
            "float16",
            check(
                "float16",
                gmres::<DenseStore<F16>, _, _>(&a, &b, &x0, &opts, &Identity),
            ),
        ),
        (
            "bfloat16",
            check(
                "bfloat16",
                gmres::<DenseStore<BF16>, _, _>(&a, &b, &x0, &opts, &Identity),
            ),
        ),
        (
            "frsz2_32",
            check(
                "frsz2_32",
                gmres::<Frsz2Store, _, _>(&a, &b, &x0, &opts, &Identity),
            ),
        ),
    ] {
        assert!(
            iters >= base,
            "{label} cannot beat the uncompressed basis on iterations here"
        );
    }
}

#[test]
fn cb_gmres_with_frsz2_21_basis_matches_f64_tolerance() {
    // Smoke test for the paper's headline configuration: CB-GMRES whose
    // Krylov basis is stored with the non-word-aligned `l = 21` format
    // must reach the same tolerance as the uncompressed f64 basis on the
    // 10×10×10 convection–diffusion system.
    let a = gen::conv_diff_3d(10, 10, 10, [0.4, 0.2, 0.1], 0.2);
    let (x_true, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-10);

    let full = gmres::<DenseStore<f64>, _, _>(&a, &b, &x0, &opts, &Identity);
    assert!(full.stats.converged, "f64 baseline did not converge");

    let cfg = Frsz2Config::new(32, 21);
    let cb = gmres_with(&a, &b, &x0, &opts, &Identity, |rows, cols| {
        Frsz2Store::with_config(cfg, rows, cols)
    });
    assert!(
        cb.stats.converged,
        "frsz2_21 basis did not reach 1e-10 (rrn {:.2e})",
        cb.stats.final_rrn
    );
    assert!(
        cb.stats.final_rrn <= opts.target_rrn,
        "converged flag disagrees with the residual ({:.2e})",
        cb.stats.final_rrn
    );
    // Both solves must actually solve the system, not merely stagnate.
    for (label, r) in [("float64", &full), ("frsz2_21", &cb)] {
        let err: f64 =
            r.x.iter()
                .zip(&x_true)
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f64>()
                .sqrt();
        assert!(err < 1e-6, "{label} solution error {err}");
    }
    // 21-bit storage cannot beat the uncompressed basis on iterations.
    assert!(cb.stats.iterations >= full.stats.iterations);
    // And it must actually be storing ~21+ amortized bits, not 64.
    assert!(
        cb.stats.basis_bits_per_value < 23.0 && cb.stats.basis_bits_per_value > 20.0,
        "frsz2_21 basis reports {} bits/value",
        cb.stats.basis_bits_per_value
    );
}

#[test]
fn frsz2_variants_order_by_precision() {
    let a = gen::conv_diff_3d(9, 9, 9, [0.3, 0.1, 0.0], 0.15);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-9);
    let run = |l: u32| {
        let cfg = Frsz2Config::new(32, l);
        let r = gmres_with(&a, &b, &x0, &opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        });
        assert!(r.stats.converged, "frsz2_{l} failed");
        r.stats.iterations
    };
    let (i16_, i32_, i64_) = (run(16), run(32), run(64));
    assert!(
        i64_ <= i32_,
        "more precision cannot need more iterations ({i64_} vs {i32_})"
    );
    assert!(
        i32_ <= i16_,
        "frsz2_32 ({i32_}) must beat frsz2_16 ({i16_})"
    );
}

#[test]
fn lossy_roundtrip_basis_converges_for_every_table_two_codec() {
    let a = gen::conv_diff_3d(8, 8, 8, [0.2, 0.1, 0.0], 0.3);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-6);
    for info in registry::TABLE_TWO.iter() {
        let codec = registry::by_name(info.name).unwrap();
        let r = gmres_with(&a, &b, &x0, &opts, &Identity, |rows, cols| {
            RoundTripStore::new(codec.clone(), rows, cols)
        });
        assert!(
            r.stats.converged,
            "{} did not reach 1e-6 (rrn {:.2e})",
            info.name, r.stats.final_rrn
        );
        assert!(
            r.stats.basis_bits_per_value > 1.0,
            "{} reported no storage rate",
            info.name
        );
    }
}

#[test]
fn simulated_gpu_kernels_agree_with_solver_storage() {
    // The warp-kernel decompression must agree bit-for-bit with what the
    // solver's accessor produced from the same compressed column.
    let n = 640;
    let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
    let cfg = Frsz2Config::new(32, 32);

    let mut store = Frsz2Store::with_config(cfg, n, 1);
    store.write_column(0, &data);
    let mut via_accessor = vec![0.0; n];
    store.read_column(0, &mut via_accessor);

    let v = Frsz2Vector::compress(cfg, &data);
    let (via_sim, counters) =
        gpusim::kernels::frsz2_decompress_sim(cfg, v.words(), v.exponents(), n);
    for i in 0..n {
        assert_eq!(via_sim[i].to_bits(), via_accessor[i].to_bits(), "row {i}");
    }
    // And the simulated kernel must fit the paper's instruction budget.
    let ops_per_value = (counters.int + counters.clz) as f64 / n as f64;
    assert!(
        ops_per_value < 46.0,
        "decompression exceeds the §I budget: {ops_per_value}"
    );
}

#[test]
fn suite_problems_have_finite_unit_rhs() {
    for name in suite::names() {
        let m = suite::build(name, 0.2).unwrap();
        let (x, b) = manufactured_rhs(&m.matrix);
        assert!(
            (norm2(&x) - 1.0).abs() < 1e-12,
            "{name}: solution not unit norm"
        );
        assert!(b.iter().all(|v| v.is_finite()), "{name}: non-finite rhs");
        assert!(
            suite::analogue_target(name).is_some(),
            "{name}: no analogue target"
        );
    }
}

#[test]
fn preconditioned_solve_reaches_tighter_targets() {
    // Extension feature: Jacobi preconditioning on a scaled problem.
    let mut a = gen::conv_diff_3d(8, 8, 8, [0.2, 0.0, 0.0], 0.4);
    let phi = gen::phi_uncorrelated(a.rows(), 6, 9);
    gen::apply_similarity_scaling(&mut a, &phi);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-11);
    let jac = Jacobi::new(&a);
    let plain = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &opts, &Identity);
    let pre = gmres::<Frsz2Store, _, _>(&a, &b, &x0, &opts, &jac);
    assert!(pre.stats.converged);
    assert!(pre.stats.iterations <= plain.stats.iterations.max(1));
}

#[test]
fn cb_gmres_bit_identical_across_thread_counts() {
    // The determinism contract end to end: the full CB-GMRES solve with
    // the paper's non-word-aligned l = 21 basis must produce the exact
    // same residual history and iteration count whether the kernels run
    // on 1, 2, or 8 threads. Chunk boundaries (and therefore every
    // floating-point reduction order) are fixed independently of the
    // thread count, so any divergence here is a scheduling bug.
    let a = gen::conv_diff_3d(12, 12, 12, [0.4, 0.2, 0.1], 0.2);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-10);
    let cfg = Frsz2Config::new(32, 21);
    let solve = || {
        gmres_with(&a, &b, &x0, &opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        })
    };

    let baseline = solve();
    assert!(baseline.stats.converged, "baseline solve must converge");
    assert!(
        !baseline.history.is_empty(),
        "history must be recorded for the comparison to mean anything"
    );
    for threads in [1, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let r = pool.install(solve);
        assert_eq!(
            r.stats.iterations, baseline.stats.iterations,
            "iteration count diverged at {threads} threads"
        );
        assert_eq!(
            r.stats.final_rrn.to_bits(),
            baseline.stats.final_rrn.to_bits(),
            "final residual diverged at {threads} threads"
        );
        assert_eq!(r.history.len(), baseline.history.len());
        for (p, q) in r.history.iter().zip(&baseline.history) {
            assert_eq!(p.iteration, q.iteration);
            assert_eq!(
                p.rrn.to_bits(),
                q.rrn.to_bits(),
                "residual history diverged at iteration {} with {threads} threads",
                p.iteration
            );
        }
        for (x1, x2) in r.x.iter().zip(&baseline.x) {
            assert_eq!(
                x1.to_bits(),
                x2.to_bits(),
                "solution vector diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn solver_histories_are_reproducible_across_runs() {
    let m = suite::build("atmosmodd", 0.2).unwrap();
    let (_, b) = manufactured_rhs(&m.matrix);
    let x0 = vec![0.0; m.matrix.rows()];
    let opts = small_opts(1e-12);
    let r1 = gmres::<Frsz2Store, _, _>(&m.matrix, &b, &x0, &opts, &Identity);
    let r2 = gmres::<Frsz2Store, _, _>(&m.matrix, &b, &x0, &opts, &Identity);
    assert_eq!(r1.history.len(), r2.history.len());
    for (p, q) in r1.history.iter().zip(&r2.history) {
        assert_eq!(p.rrn.to_bits(), q.rrn.to_bits());
    }
}

#[test]
fn frsz2_byte_adapter_matches_store_semantics() {
    let data: Vec<f64> = (0..300).map(|i| (i as f64 * 0.41).cos()).collect();
    let cfg = Frsz2Config::new(32, 21);
    let adapter = frsz2_repro::lossy::frsz2_adapter::Frsz2Compressor::new(cfg);
    let via_bytes = adapter.decompress(&adapter.compress(&data), data.len());

    let mut store = Frsz2Store::with_config(cfg, data.len(), 1);
    store.write_column(0, &data);
    for (i, v) in via_bytes.iter().enumerate() {
        assert_eq!(v.to_bits(), store.load(i, 0).to_bits(), "row {i}");
    }
}

#[test]
fn cb_gmres_l21_history_is_format_independent_end_to_end() {
    // The paper's headline l = 21 configuration, run with the operator
    // held in each sparse format (CSR / ELL / SELL-C-σ / the runtime
    // auto-selection): the bit-identity contract of `SparseMatrix`
    // means every residual history point and every solution entry is
    // bitwise equal — the format is a pure performance knob.
    use frsz2_repro::spla::{auto_format, Ell, SellCSigma, SparseMatrix};
    let a = gen::conv_diff_3d(10, 10, 10, [0.4, 0.2, 0.1], 0.2);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = small_opts(1e-10);
    let cfg = Frsz2Config::new(32, 21);
    let solve = |op: &dyn SparseMatrix| {
        gmres_with(op, &b, &x0, &opts, &Identity, |rows, cols| {
            Frsz2Store::with_config(cfg, rows, cols)
        })
    };
    let base = solve(&a);
    assert!(base.stats.converged, "CSR-backed l=21 solve must converge");
    let ell = Ell::from_csr(&a);
    let sell = SellCSigma::from_csr(&a, 32, 256);
    let auto = auto_format(&a).build(&a);
    for (label, op) in [
        ("ell", &ell as &dyn SparseMatrix),
        ("sell-c-sigma", &sell),
        ("auto", auto.as_ref()),
    ] {
        let r = solve(op);
        assert_eq!(r.stats.iterations, base.stats.iterations, "{label}");
        assert_eq!(r.history.len(), base.history.len(), "{label}");
        for (p, q) in r.history.iter().zip(&base.history) {
            assert_eq!(p.rrn.to_bits(), q.rrn.to_bits(), "{label} history");
        }
        for (u, v) in r.x.iter().zip(&base.x) {
            assert_eq!(u.to_bits(), v.to_bits(), "{label} solution");
        }
    }
}

#[test]
fn adaptive_basis_rescues_the_stagnating_frsz2_16_solve() {
    // Acceptance scenario end to end, on the PR02R regime (§VI-A):
    // similarity scaling by an uncorrelated power-of-two field spreads
    // neighbouring Krylov entries across ~24 binades, so frsz2_16's 14
    // kept bits flush most of each block and the fixed-format solve
    // stagnates far above target. The adaptive driver must (a) converge,
    // (b) escalate at most one ladder rung per restart boundary,
    // (c) report the per-cycle format trajectory, and (d) be bit-identical
    // at 1, 2 and 8 threads — escalation schedule included.
    let a = gen::wide_range_conv_diff(10, 10, 10, 24, 0x5202);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        restart: 40,
        max_iters: 1500,
        target_rrn: 1e-10,
        ..GmresOptions::default()
    };

    // (counterpoint) fixed frsz2_16 stagnates to the iteration cap.
    let cfg = Frsz2Config::new(32, 16);
    let fixed = gmres_with(&a, &b, &x0, &opts, &Identity, |rows, cols| {
        Frsz2Store::with_config(cfg, rows, cols)
    });
    assert!(
        !fixed.stats.converged,
        "fixed frsz2_16 unexpectedly reached 1e-10 (rrn {:.2e})",
        fixed.stats.final_rrn
    );
    assert!(fixed.stats.final_rrn > 1e-8, "not a real stagnation");

    let aopts = AdaptiveOptions {
        gmres: opts,
        ..AdaptiveOptions::default()
    };
    let solve = || adaptive_gmres(&a, &b, &x0, &aopts, &Identity);
    let r = solve();
    assert!(
        r.stats.converged,
        "adaptive stalled at {:.2e} (trajectory {:?})",
        r.stats.final_rrn, r.stats.format_trajectory
    );
    assert!(r.stats.final_rrn <= 1e-10);
    assert!(
        r.stats.iterations < fixed.stats.iterations,
        "adaptive must beat the stagnating fixed solve"
    );
    assert!(r.stats.escalations >= 1);

    // (b) + (c): trajectory covers every cycle and climbs one rung at
    // a time, starting from the ladder base.
    assert_eq!(r.stats.format_trajectory.len(), r.stats.restarts);
    assert_eq!(r.stats.format_trajectory[0], ESCALATION_LADDER[0]);
    let rungs: Vec<usize> = r
        .stats
        .format_trajectory
        .iter()
        .map(|f| ESCALATION_LADDER.iter().position(|l| l == f).unwrap())
        .collect();
    for pair in rungs.windows(2) {
        assert!(
            pair[1] == pair[0] || pair[1] == pair[0] + 1,
            "more than one escalation at a restart boundary: {:?}",
            r.stats.format_trajectory
        );
    }

    // (d) thread-count bit-identity, fingerprint discipline included.
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let rt = pool.install(solve);
        assert_eq!(rt.stats.format_trajectory, r.stats.format_trajectory);
        assert_eq!(rt.stats.iterations, r.stats.iterations);
        assert_eq!(rt.history.len(), r.history.len());
        for (p, q) in rt.history.iter().zip(&r.history) {
            assert_eq!(
                p.rrn.to_bits(),
                q.rrn.to_bits(),
                "adaptive history diverged at {threads} threads"
            );
        }
        for (u, v) in rt.x.iter().zip(&r.x) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }
}

#[test]
fn wide_range_flush_behaviour_matches_prediction_end_to_end() {
    // The PR02R mechanism, end to end: predicted flush fraction from the
    // error module matches what the codec does inside the store.
    let n = 2048;
    let phi = gen::phi_uncorrelated(n, 40, 7);
    let data: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * 0.73).sin() + 1.1) * f64::powi(2.0, phi[i]))
        .collect();
    let cfg = Frsz2Config::new(32, 32);
    let predicted = frsz2_repro::frsz2::error::predicted_flush_fraction(cfg, &data);
    let mut store = Frsz2Store::with_config(cfg, n, 1);
    store.write_column(0, &data);
    let mut out = vec![0.0; n];
    store.read_column(0, &mut out);
    let observed = data
        .iter()
        .zip(&out)
        .filter(|(a, b)| **a != 0.0 && **b == 0.0)
        .count() as f64
        / n as f64;
    assert!(
        (predicted - observed).abs() < 1e-9,
        "predicted {predicted} vs observed {observed}"
    );
    assert!(
        observed > 0.05,
        "the wide-range data must actually flush values"
    );
}

#[test]
fn block_solve_end_to_end_per_rhs_convergence_and_width_one_identity() {
    // The block driver through the umbrella crate, end to end: four
    // right-hand sides of single-solve difficulty share one compressed
    // Krylov space; every RHS must reach the explicit target
    // (recomputed here from scratch), and the width-1 block solve must
    // be the single solve bit for bit.
    let a = gen::conv_diff_3d(10, 10, 10, [0.4, 0.2, 0.1], 0.2);
    let n = a.rows();
    let (_, b0) = manufactured_rhs(&a);
    let rhss: Vec<Vec<f64>> = (0..4)
        .map(|k| {
            if k == 0 {
                b0.clone()
            } else {
                let xsol: Vec<f64> = (0..n)
                    .map(|i| ((i as f64) * (1.0 + 0.37 * k as f64) + (k as f64) * 0.73).sin())
                    .collect();
                a.mul_vec(&xsol)
            }
        })
        .collect();
    let opts = GmresOptions {
        restart: 25,
        ..small_opts(1e-9)
    };
    let cfg = Frsz2Config::new(32, 21);
    let r = block_gmres_with(&a, &rhss, None, &opts, &Identity, |rows, cols| {
        Frsz2Store::with_config(cfg, rows, cols)
    });
    assert!(r.all_converged(), "every RHS must converge");
    for (k, (x, b)) in r.solutions.iter().zip(&rhss).enumerate() {
        let ax = a.mul_vec(x);
        let res: Vec<f64> = ax.iter().zip(b).map(|(ai, bi)| bi - ai).collect();
        let rrn = norm2(&res) / norm2(b);
        assert!(
            rrn <= 1e-9,
            "RHS {k}: explicit residual {rrn:e} misses target"
        );
    }
    // One operator sweep per expansion serves all four RHS: far fewer
    // sweeps than four independent solves would spend.
    let total_iters: usize = r.stats.iter().map(|s| s.iterations).sum();
    assert!(
        (r.operator_sweeps as usize) < total_iters,
        "sweeps {} should be amortized below summed iterations {total_iters}",
        r.operator_sweeps
    );

    let single = gmres_with(&a, &b0, &vec![0.0; n], &opts, &Identity, |rows, cols| {
        Frsz2Store::with_config(cfg, rows, cols)
    });
    let one = block_gmres_with(
        &a,
        std::slice::from_ref(&rhss[0]),
        None,
        &opts,
        &Identity,
        |rows, cols| Frsz2Store::with_config(cfg, rows, cols),
    );
    assert_eq!(one.stats[0].iterations, single.stats.iterations);
    assert_eq!(
        one.stats[0].final_rrn.to_bits(),
        single.stats.final_rrn.to_bits()
    );
    for (x1, x2) in one.solutions[0].iter().zip(&single.x) {
        assert_eq!(
            x1.to_bits(),
            x2.to_bits(),
            "width-1 block must be the single solve"
        );
    }
}

/// Satellite (PR 10): checkpoint round-trips across every registered
/// basis format. Serialize at a mid-solve restart boundary, resume
/// from the decoded bytes, and require the stitched solve to be
/// byte-equal to the uninterrupted one — solution, residual history,
/// and counters — at 1, 2, and 8 threads.
#[test]
fn checkpoint_round_trip_is_bit_identical_for_every_format() {
    use frsz2_repro::krylov::basis_format::{by_name, names};
    use frsz2_repro::krylov::{gmres_dyn_controlled, SolveCheckpoint, SolveControl};

    let a = gen::conv_diff_3d(6, 6, 6, [0.3, 0.2, 0.1], 0.2);
    let (_, b) = manufactured_rhs(&a);
    let x0 = vec![0.0; a.rows()];
    let opts = GmresOptions {
        target_rrn: 1e-8,
        max_iters: 400,
        restart: 5,
        ..GmresOptions::default()
    };

    for name in names() {
        let fmt = by_name(&name).unwrap();
        let base = frsz2_repro::krylov::basis_format::gmres_dyn(
            &a,
            &b,
            &x0,
            &opts,
            &Identity,
            fmt.as_ref(),
        );
        assert!(
            base.stats.restarts >= 2,
            "{name}: need at least two cycles to split the solve"
        );

        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (halted, resumed) = pool.install(|| {
                // Halt at the second boundary (one completed cycle)...
                let mut taken: Option<Vec<u8>> = None;
                let mut boundaries = 0usize;
                let mut probe = |cp: &SolveCheckpoint| {
                    boundaries += 1;
                    if boundaries == 2 {
                        taken = Some(cp.encode(None));
                        SolveControl::Halt
                    } else {
                        SolveControl::Continue
                    }
                };
                let first = gmres_dyn_controlled(
                    &a,
                    &b,
                    &x0,
                    &opts,
                    &Identity,
                    fmt.as_ref(),
                    None,
                    Some(&mut probe),
                    |_| {},
                );
                // ...then resume from the serialized bytes.
                let bytes = taken.expect("checkpoint captured at halt");
                let cp = SolveCheckpoint::decode(&bytes, None).expect("checkpoint decodes");
                let resumed = gmres_dyn_controlled(
                    &a,
                    &b,
                    &vec![0.0; a.rows()],
                    &opts,
                    &Identity,
                    fmt.as_ref(),
                    Some(&cp),
                    None,
                    |_| {},
                );
                (first, resumed)
            });
            assert!(halted.halted, "{name}/{threads}t: probe must halt");
            let r = resumed.result;
            assert_eq!(
                r.stats.converged, base.stats.converged,
                "{name}/{threads}t: convergence state diverged"
            );
            assert_eq!(
                r.stats.iterations, base.stats.iterations,
                "{name}/{threads}t: iteration count diverged"
            );
            assert_eq!(
                r.stats.spmv_count, base.stats.spmv_count,
                "{name}/{threads}t: spmv count diverged"
            );
            assert_eq!(
                r.stats.final_rrn.to_bits(),
                base.stats.final_rrn.to_bits(),
                "{name}/{threads}t: final residual diverged"
            );
            assert_eq!(r.history.len(), base.history.len(), "{name}/{threads}t");
            for (p, q) in r.history.iter().zip(&base.history) {
                assert_eq!(p.iteration, q.iteration, "{name}/{threads}t");
                assert_eq!(
                    p.rrn.to_bits(),
                    q.rrn.to_bits(),
                    "{name}/{threads}t: residual history diverged at iteration {}",
                    p.iteration
                );
            }
            for (u, v) in r.x.iter().zip(&base.x) {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{name}/{threads}t: solution diverged"
                );
            }
        }
    }
}
